package server

import (
	"context"
	"net"
	"strings"
	"sync"
	"time"
)

// Resolver maps a requester's numeric address to its symbolic name, the
// third component of the paper's subject triple ⟨user-id, IP-address,
// sym-address⟩. Resolution failures are not errors: a request from an
// unresolvable host simply matches only universal symbolic patterns.
type Resolver interface {
	// Reverse returns the symbolic name for ip, or "" if unknown.
	Reverse(ip string) string
}

// StaticResolver resolves from a fixed table — the hermetic resolver
// used in tests and demonstrations (the paper's own example hosts are
// preloaded by NewStaticResolver). Real deployments substitute
// DNSResolver; the behaviour that matters to the model (the subject
// triple and pattern matching) is identical. See DESIGN.md §4.
type StaticResolver struct {
	mu    sync.RWMutex
	table map[string]string
}

// NewStaticResolver returns a resolver preloaded with the paper's
// example hosts.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{table: map[string]string{
		"130.100.50.8": "infosys.bld1.it", // Example 2's requester
		"150.100.30.8": "tweety.lab.com",  // Section 3's example
	}}
}

// Add registers a reverse mapping.
func (r *StaticResolver) Add(ip, host string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.table[ip] = host
}

// Reverse implements Resolver.
func (r *StaticResolver) Reverse(ip string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table[ip]
}

// DNSResolver resolves through the system resolver with a short
// timeout. It is the production substitute for StaticResolver.
type DNSResolver struct {
	// Timeout bounds each lookup; zero means 500ms.
	Timeout time.Duration
}

// Reverse implements Resolver via net.LookupAddr.
func (r DNSResolver) Reverse(ip string) string {
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 500 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	names, err := net.DefaultResolver.LookupAddr(ctx, ip)
	if err != nil || len(names) == 0 {
		return ""
	}
	return strings.TrimSuffix(names[0], ".")
}
