package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/labexample"
	"xmlsec/internal/subjects"
	"xmlsec/internal/wal"
)

// durableLabSite assembles the example site (plus Sam's read/write
// authority, as in writerSite) and enables durability in dir. The
// grants precede EnableDurability, so on a fresh dir they land in the
// initial baseline snapshot; on an existing dir they are discarded and
// re-established from that snapshot — either way the data directory
// alone determines the recovered state.
func durableLabSite(t *testing.T, dir string) *Site {
	t.Helper()
	site := labSite(t)
	if err := site.Auths.Add(authz.InstanceLevel,
		authz.MustParse(`<<Admin,*,*>,CSlab.xml:/laboratory,read,+,R>`)); err != nil {
		t.Fatal(err)
	}
	if err := site.GrantWrite(authz.InstanceLevel,
		`<<Admin,*,*>,CSlab.xml:/laboratory,write,+,R>`); err != nil {
		t.Fatal(err)
	}
	site.EnableAdminAPI = true
	site.AdminGroup = "Admin"
	if err := site.EnableDurability(dir, DurabilityOptions{Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	return site
}

func do(t *testing.T, h http.Handler, method, path, user, ip, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	req.RemoteAddr = ip + ":4000"
	if user != "" {
		req.SetBasicAuth(user, "pw-"+strings.ToLower(user))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// activeSegment returns the newest log segment in dir (names embed the
// first LSN in fixed-width hex, so lexical order is numeric order).
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no log segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// TestDurableHTTPRoundTrip is the acceptance scenario: mutate a running
// site over HTTP (document update + XACL install), stop it, recover a
// fresh site from the data directory alone, and require byte-identical
// views and identical access decisions — then once more after a torn
// write is simulated on the log tail.
func TestDurableHTTPRoundTrip(t *testing.T) {
	dir := t.TempDir()
	site := durableLabSite(t, dir)
	h := site.Handler()

	if rec := do(t, h, http.MethodGet, "/docs/CSlab.xml", "Tom", "130.100.50.8", ""); rec.Code != http.StatusOK ||
		strings.Contains(rec.Body.String(), "Ada Turing") {
		t.Fatalf("Tom's initial view wrong (code %d):\n%s", rec.Code, rec.Body.String())
	}

	// Mutation 1: Sam replaces the document through the write path.
	if rec := do(t, h, http.MethodPut, "/docs/CSlab.xml", "Sam", "130.89.56.8", updatedCSlab); rec.Code != http.StatusNoContent {
		t.Fatalf("PUT as Sam: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	// Mutation 2: Sam installs an XACL over the admin API, opening the
	// managers to Foreign — Tom's view gains "Ada Turing".
	grant := (&authz.XACL{About: "CSlab.xml", Auths: []*authz.Authorization{
		authz.MustParse(`<<Foreign,*,*>,CSlab.xml://manager,read,+,R>`),
	}}).String()
	if rec := do(t, h, http.MethodPost, "/admin/xacl", "Sam", "130.89.56.8", grant); rec.Code != http.StatusNoContent {
		t.Fatalf("POST /admin/xacl as Sam: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	// Admin surface decisions: anonymous is 401 (never a silent no-op),
	// a non-admin user is 403, a malformed XACL is the caller's fault.
	if rec := do(t, h, http.MethodPost, "/admin/xacl", "", "130.100.50.8", grant); rec.Code != http.StatusUnauthorized {
		t.Errorf("anonymous admin POST: HTTP %d, want 401", rec.Code)
	}
	if rec := do(t, h, http.MethodPost, "/admin/xacl", "Tom", "130.100.50.8", grant); rec.Code != http.StatusForbidden {
		t.Errorf("non-admin POST: HTTP %d, want 403", rec.Code)
	}
	if rec := do(t, h, http.MethodPost, "/admin/xacl", "Sam", "130.89.56.8", "<notxacl/>"); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("malformed XACL: HTTP %d, want 422", rec.Code)
	}

	tomView := do(t, h, http.MethodGet, "/docs/CSlab.xml", "Tom", "130.100.50.8", "")
	if tomView.Code != http.StatusOK || !strings.Contains(tomView.Body.String(), "Ada Turing") ||
		strings.Contains(tomView.Body.String(), "Web Search") {
		t.Fatalf("Tom's post-mutation view wrong (code %d):\n%s", tomView.Code, tomView.Body.String())
	}
	samView := do(t, h, http.MethodGet, "/docs/CSlab.xml", "Sam", "130.89.56.8", "")
	if samView.Code != http.StatusOK {
		t.Fatalf("Sam's view: HTTP %d", samView.Code)
	}
	// Anonymous requesters are implicitly in group Public, whose grant
	// on public papers gives them a partial view; pin it too.
	anonView := do(t, h, http.MethodGet, "/docs/CSlab.xml", "", "9.9.9.9", "")
	if anonView.Code != http.StatusOK {
		t.Fatalf("anonymous view: HTTP %d", anonView.Code)
	}
	if st := site.WALStats(); st.Appends < 2 || st.Snapshots < 1 {
		t.Errorf("WAL stats after mutations: %+v", st)
	}

	// Stop the first "process".
	if err := site.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	// Recover a fresh site from the data directory alone.
	site2 := durableLabSite(t, dir)
	h2 := site2.Handler()
	if got := do(t, h2, http.MethodGet, "/docs/CSlab.xml", "Tom", "130.100.50.8", ""); got.Code != http.StatusOK ||
		got.Body.String() != tomView.Body.String() {
		t.Errorf("Tom's recovered view differs (code %d):\n--- before ---\n%s\n--- after ---\n%s",
			got.Code, tomView.Body.String(), got.Body.String())
	}
	if got := do(t, h2, http.MethodGet, "/docs/CSlab.xml", "Sam", "130.89.56.8", ""); got.Body.String() != samView.Body.String() {
		t.Errorf("Sam's recovered view differs:\n%s", got.Body.String())
	}
	// Decisions survive too: the anonymous partial view is unchanged,
	// and Tom still cannot write.
	if rec := do(t, h2, http.MethodGet, "/docs/CSlab.xml", "", "9.9.9.9", ""); rec.Body.String() != anonView.Body.String() {
		t.Errorf("anonymous recovered view differs:\n%s", rec.Body.String())
	}
	if rec := do(t, h2, http.MethodPut, "/docs/CSlab.xml", "Tom", "130.100.50.8", updatedCSlab); rec.Code != http.StatusForbidden {
		t.Errorf("Tom's PUT after recovery: HTTP %d, want 403", rec.Code)
	}
	if err := site2.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: a crash mid-append leaves a partial frame
	// at the log's tail. Recovery must truncate it and serve the last
	// committed state.
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	site3 := durableLabSite(t, dir)
	if site3.WALStats().TruncatedBytes == 0 {
		t.Error("torn tail was not truncated")
	}
	h3 := site3.Handler()
	if got := do(t, h3, http.MethodGet, "/docs/CSlab.xml", "Tom", "130.100.50.8", ""); got.Body.String() != tomView.Body.String() {
		t.Errorf("Tom's view after torn-tail recovery differs:\n%s", got.Body.String())
	}
	// The log accepts new mutations after healing the tail.
	if err := site3.PutDocument(labexample.DocURI, labexample.DocSource); err != nil {
		t.Fatalf("mutation after torn-tail recovery: %v", err)
	}
	if err := site3.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestKillPointEveryByte cuts the log at every byte boundary of the
// final record and recovers: every prefix must yield the pre-mutation
// state, the full log the post-mutation state, and no cut may corrupt
// recovery. This is the site-level half of wal.TestTornTailEveryByte —
// here the record is a real document replacement.
func TestKillPointEveryByte(t *testing.T) {
	dir := t.TempDir()
	site := durableLabSite(t, dir)
	sam := subjects.Requester{User: "Sam", IP: "130.89.56.8"}
	pre, err := site.Process(sam, labexample.DocURI)
	if err != nil {
		t.Fatal(err)
	}
	seg := activeSegment(t, dir)
	st0, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := site.PutDocument(labexample.DocURI, updatedCSlab); err != nil {
		t.Fatal(err)
	}
	post, err := site.Process(sam, labexample.DocURI)
	if err != nil {
		t.Fatal(err)
	}
	if pre.XML == post.XML {
		t.Fatal("mutation did not change the view; the kill points would prove nothing")
	}
	if err := site.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	st1, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Size() <= st0.Size() {
		t.Fatalf("segment did not grow: %d -> %d", st0.Size(), st1.Size())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for cut := st0.Size(); cut <= st1.Size(); cut++ {
		killDir := filepath.Join(t.TempDir(), "data")
		if err := os.Mkdir(killDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() == filepath.Base(seg) {
				b = b[:cut]
			}
			if err := os.WriteFile(filepath.Join(killDir, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		recovered := durableLabSite(t, killDir)
		res, err := recovered.Process(sam, labexample.DocURI)
		if err != nil {
			t.Fatalf("cut at byte %d: recovery corrupt: %v", cut, err)
		}
		want := pre.XML
		if cut == st1.Size() {
			want = post.XML
		}
		if res.XML != want {
			t.Fatalf("cut at byte %d: view is neither pre- nor the expected state:\n%s", cut, res.XML)
		}
		if err := recovered.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentMutationDuringCompaction exercises Update and QueryDoc
// racing with snapshot compaction; run under -race it pins the
// persistMu/store-lock discipline. A final recovery proves the log
// still replays to one of the two alternating states.
func TestConcurrentMutationDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	site := durableLabSite(t, dir)
	sam := subjects.Requester{User: "Sam", IP: "130.89.56.8"}
	sources := [2]string{labexample.DocSource, updatedCSlab}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := site.Update(sam, labexample.DocURI, sources[i%2]); err != nil {
				t.Errorf("concurrent update: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := site.QueryDoc(labexample.Tom, labexample.DocURI, "//title"); err != nil {
				t.Errorf("concurrent query: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := site.Compact(); err != nil {
			t.Errorf("compaction under load: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	// Update stores the merged serialization, not the raw PUT body, so
	// the durability property to pin is: recovery reproduces the last
	// committed source exactly.
	last := site.Docs.Doc(labexample.DocURI).Source
	if got := site.WALStats().Snapshots; got < 20 {
		t.Errorf("snapshots written under load = %d, want >= 20", got)
	}
	if err := site.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	recovered := durableLabSite(t, dir)
	defer recovered.CloseDurability()
	if got := recovered.Docs.Doc(labexample.DocURI).Source; got != last {
		t.Errorf("recovered document is not the last committed state:\n--- want ---\n%s\n--- got ---\n%s", last, got)
	}
}
