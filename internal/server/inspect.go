package server

import (
	"net/http"

	"xmlsec/internal/wal"
)

// This file holds the deep state inspectors served beside /statz: where
// the metric registry aggregates, these dump the actual contents of the
// runtime structures PRs 1–8 built — the view cache, the node-set
// index, the class universe, the write-ahead log — plus the slow-
// request log and the /readyz readiness probe. All answer 404 while
// their subsystem is disabled, matching /debug/traces.

// SetReady flips the site's readiness (see GET /readyz). A zero-valued
// Site is ready, so embedded and test uses serve unchanged; servers
// that recover a WAL before serving mark themselves not-ready first,
// listen, and flip ready once recovery completes — load balancers then
// see the process during replay without routing traffic to it.
func (s *Site) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the site is serving (readiness, not liveness).
func (s *Site) Ready() bool { return !s.notReady.Load() }

// handleReadyz serves GET /readyz: 200 once the site's state is fully
// recovered and serving, 503 before that. Distinct from /healthz, which
// answers 200 as soon as the process accepts connections: liveness says
// "don't restart me", readiness says "you may route traffic to me".
func (s *Site) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// gateReadiness answers 503 on the stateful routes while the site is
// not ready: during WAL replay the stores are mid-mutation, so views
// computed from them could be of half-recovered state. Probe and
// observability routes stay reachable — that is the point of listening
// before recovery finishes.
func (s *Site) gateReadiness(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			switch routeOf(r.URL.Path) {
			case "/docs/", "/query/", "/dtds/", "/admin/":
				w.Header().Set("Retry-After", "1")
				http.Error(w, "recovering", http.StatusServiceUnavailable)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// gateDebug wraps an introspection handler with the site's debug-
// endpoint authorization: when DebugGroup is set, the caller must
// authenticate (401 otherwise) and belong to that directory group (403
// otherwise). With DebugGroup empty the handler is open, the historical
// /statz posture. /metrics is deliberately not gated: Prometheus
// scrapers do not do Basic auth against the site's user database.
func (s *Site) gateDebug(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g := s.DebugGroup; g != "" {
			user, ok := s.authenticate(r)
			if !ok || user == "" {
				w.Header().Set("WWW-Authenticate", `Basic realm="xmlsec"`)
				http.Error(w, "authentication required", http.StatusUnauthorized)
				return
			}
			if !s.Directory.MemberOf(user, g) {
				http.Error(w, "debug access requires group "+g, http.StatusForbidden)
				return
			}
		}
		next(w, r)
	}
}

// slowzResponse is the body of GET /debug/slowz.
type slowzResponse struct {
	// ThresholdNs is the capture threshold; requests at or above it are
	// offered to the board.
	ThresholdNs int64 `json:"threshold_ns"`
	// Observed counts requests that crossed the threshold; Recorded the
	// ones admitted to the board (including later-evicted ones).
	Observed uint64 `json:"observed"`
	Recorded uint64 `json:"recorded"`
	// Entries is the current board, slowest first.
	Entries []SlowEntry `json:"entries"`
}

// handleSlowz serves GET /debug/slowz: the worst-offender board with
// each request's cost card, joined to audit records, traces, and logs
// by request_id. 404 until EnableSlowLog.
func (s *Site) handleSlowz(w http.ResponseWriter, r *http.Request) {
	if s.slow == nil {
		http.NotFound(w, r)
		return
	}
	observed, recorded, _ := s.slow.StatsCounts()
	s.writeJSON(w, slowzResponse{
		ThresholdNs: s.slow.threshold.Nanoseconds(),
		Observed:    observed,
		Recorded:    recorded,
		Entries:     s.slow.Snapshot(),
	})
}

// cachezResponse is the body of GET /debug/cachez.
type cachezResponse struct {
	LegacyTriple bool             `json:"legacy_triple,omitempty"`
	Hits         uint64           `json:"hits"`
	Misses       uint64           `json:"misses"`
	Coalesced    uint64           `json:"coalesced"`
	Entries      []CacheEntryInfo `json:"entries"`
}

// handleCachez serves GET /debug/cachez: every cached view with its
// class, generations, age, and size. 404 until EnableViewCache.
func (s *Site) handleCachez(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		http.NotFound(w, r)
		return
	}
	hits, misses := s.cache.Stats()
	s.writeJSON(w, cachezResponse{
		LegacyTriple: s.cache.legacyTriple,
		Hits:         hits,
		Misses:       misses,
		Coalesced:    s.cache.Coalesced(),
		Entries:      s.cache.Entries(),
	})
}

// authindexzDoc is one indexed document in GET /debug/authindexz; URI
// is "(replaced)" for superseded trees awaiting lazy invalidation.
type authindexzDoc struct {
	URI   string `json:"uri"`
	Gen   uint64 `json:"gen"`
	Sets  int    `json:"sets"`
	Nodes int    `json:"nodes"`
}

type authindexzResponse struct {
	Hits          uint64          `json:"hits"`
	Misses        uint64          `json:"misses"`
	Fills         uint64          `json:"fills"`
	Invalidations uint64          `json:"invalidations"`
	Documents     []authindexzDoc `json:"documents"`
}

// handleAuthindexz serves GET /debug/authindexz: per-document node-set
// counts plus fill-effectiveness counters.
func (s *Site) handleAuthindexz(w http.ResponseWriter, r *http.Request) {
	idx := s.Engine.AuthIndex()
	if idx == nil {
		http.NotFound(w, r)
		return
	}
	byDoc := make(map[any]string)
	for _, uri := range s.Docs.URIs() {
		if sd := s.Docs.Doc(uri); sd != nil {
			byDoc[sd.Doc] = uri
		}
	}
	st := idx.Stats()
	resp := authindexzResponse{
		Hits: st.Hits, Misses: st.Misses, Fills: st.Fills,
		Invalidations: st.Invalidations,
		Documents:     []authindexzDoc{},
	}
	for _, d := range idx.Inspect() {
		uri, ok := byDoc[d.Doc]
		if !ok {
			uri = "(replaced)"
		}
		resp.Documents = append(resp.Documents, authindexzDoc{
			URI: uri, Gen: d.Gen, Sets: d.Sets, Nodes: d.Nodes,
		})
	}
	s.writeJSON(w, resp)
}

// handleClassz serves GET /debug/classz: the equivalence-class
// universe, its epoch, the assigned classes, and memo occupancy. 404
// unless the class-keyed view cache is enabled.
func (s *Site) handleClassz(w http.ResponseWriter, r *http.Request) {
	if s.classes == nil {
		http.NotFound(w, r)
		return
	}
	s.writeJSON(w, s.classes.Inspect())
}

// walzResponse is the body of GET /debug/walz.
type walzResponse struct {
	Stats wal.Stats `json:"stats"`
	// Segments lists the log's files in LSN order; the last is active.
	Segments []wal.SegmentInfo `json:"segments"`
	// LastFsyncNs is the latency of the most recent data fsync (0 until
	// one has run).
	LastFsyncNs int64 `json:"last_fsync_ns"`
	// Compacting reports an in-flight background compaction;
	// SnapshotThresholdBytes is the log size that triggers one.
	Compacting             bool  `json:"compacting"`
	SnapshotThresholdBytes int64 `json:"snapshot_threshold_bytes"`
}

// handleWalz serves GET /debug/walz: durable LSN, segment sizes, last
// fsync latency, and compactor state. 404 until EnableDurability.
func (s *Site) handleWalz(w http.ResponseWriter, r *http.Request) {
	l := s.wal.Load()
	if l == nil {
		http.NotFound(w, r)
		return
	}
	s.writeJSON(w, walzResponse{
		Stats:                  l.Stats(),
		Segments:               l.Segments(),
		LastFsyncNs:            s.lastFsyncNs.Load(),
		Compacting:             s.compacting.Load(),
		SnapshotThresholdBytes: s.snapshotBytes,
	})
}
