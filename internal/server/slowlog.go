package server

import (
	"sort"
	"sync"
	"time"

	"xmlsec/internal/obs"
)

// SlowEntry is one slow-request capture: the request's identity (route,
// method, status, X-Request-ID), when it ran and for how long, and its
// full cost card. Where a trace shows the request's timeline, the slow
// log keeps the *work receipt* of the worst offenders so "why was this
// request slow" is answerable after the trace ring has churned.
type SlowEntry struct {
	RequestID  string       `json:"request_id"`
	Method     string       `json:"method"`
	Route      string       `json:"route"`
	Status     int          `json:"status"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"duration_ns"`
	Cost       obs.CostCard `json:"cost"`
}

// slowLog is a bounded worst-offender ring: requests at or above the
// threshold are recorded until the log is full, after which a new entry
// must beat the current minimum duration to enter (evicting it). The
// result is the max-K slowest requests seen, not the most recent K —
// an outlier survives however much fast traffic follows it. Reset
// clears the board, so operators can re-arm after investigating.
type slowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	max       int
	entries   []SlowEntry

	recorded uint64 // entries accepted (including ones later evicted)
	observed uint64 // requests at/above threshold offered
}

// newSlowLog builds a log keeping the max worst requests at or above
// threshold. threshold 0 captures every request (useful in tests and
// when hunting a regression); max ≤ 0 selects 64.
func newSlowLog(threshold time.Duration, max int) *slowLog {
	if max <= 0 {
		max = 64
	}
	return &slowLog{threshold: threshold, max: max}
}

// record offers one finished request to the log; it reports whether
// the entry made the board (so the caller can emit a matching
// structured log line for admitted requests only).
func (l *slowLog) record(e SlowEntry) bool {
	if l == nil || time.Duration(e.DurationNs) < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed++
	if len(l.entries) < l.max {
		l.entries = append(l.entries, e)
		l.recorded++
		return true
	}
	// Full: the new entry must beat the current minimum to enter.
	minIdx := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].DurationNs < l.entries[minIdx].DurationNs {
			minIdx = i
		}
	}
	if e.DurationNs > l.entries[minIdx].DurationNs {
		l.entries[minIdx] = e
		l.recorded++
		return true
	}
	return false
}

// Snapshot returns the current entries, slowest first.
func (l *slowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurationNs > out[j].DurationNs })
	return out
}

// Stats reports how many requests crossed the threshold and how many
// were admitted to the board.
func (l *slowLog) StatsCounts() (observed, recorded uint64, size int) {
	if l == nil {
		return 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.observed, l.recorded, len(l.entries)
}

// Reset clears the board (counters are kept: they are cumulative).
func (l *slowLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries = l.entries[:0]
	l.mu.Unlock()
}

// EnableSlowLog turns on the slow-request log: requests whose total
// duration is at or above threshold are captured with their cost cards
// and served at GET /debug/slowz, bounded to the max worst offenders
// (≤0 selects 64). A zero threshold captures everything. Returns the
// site for chaining; call before Handler(), like the other options.
func (s *Site) EnableSlowLog(threshold time.Duration, max int) *Site {
	s.slow = newSlowLog(threshold, max)
	return s
}

// SlowLog returns the current slow-request entries, slowest first
// (nil when the slow log is disabled).
func (s *Site) SlowLog() []SlowEntry {
	if s.slow == nil {
		return nil
	}
	return s.slow.Snapshot()
}
