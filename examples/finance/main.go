// Finance: protecting OFX-style financial statements.
//
// The paper's introduction lists OFX (Open Financial Exchange) as a
// motivating XML application: one document carries transactions for
// many accounts, and different parties must see different slices. This
// example protects a statement file with schema-level authorizations:
//
//   - each customer sees only the accounts they own (content-dependent
//     conditions on the account's owner attribute);
//
//   - tellers see every account's balance and transactions, but not
//     credit limits, from branch machines only;
//
//   - auditors see everything, but only during the audit window
//     (a time-bounded authorization — the Section 8 extension);
//
//   - everybody else sees nothing (closed policy).
//
//     go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"time"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/subjects"
	"xmlsec/internal/xmlparse"
)

const ofxDTD = `<!ELEMENT ofx (stmt+)>
<!ELEMENT stmt (acct, ledgerbal, banktranlist)>
<!ATTLIST stmt curdef CDATA "EUR">
<!ELEMENT acct (acctid, accttype)>
<!ATTLIST acct owner CDATA #REQUIRED limit CDATA #IMPLIED>
<!ELEMENT acctid (#PCDATA)>
<!ELEMENT accttype (#PCDATA)>
<!ELEMENT ledgerbal (balamt, dtasof)>
<!ELEMENT balamt (#PCDATA)>
<!ELEMENT dtasof (#PCDATA)>
<!ELEMENT banktranlist (stmttrn*)>
<!ELEMENT stmttrn (trntype, dtposted, trnamt, memo?)>
<!ELEMENT trntype (#PCDATA)>
<!ELEMENT dtposted (#PCDATA)>
<!ELEMENT trnamt (#PCDATA)>
<!ELEMENT memo (#PCDATA)>
`

const statements = `<?xml version="1.0"?>
<!DOCTYPE ofx SYSTEM "ofx.dtd">
<ofx>
  <stmt curdef="EUR">
    <acct owner="carla" limit="5000">
      <acctid>IT99-0001</acctid>
      <accttype>CHECKING</accttype>
    </acct>
    <ledgerbal><balamt>1204.33</balamt><dtasof>20000615</dtasof></ledgerbal>
    <banktranlist>
      <stmttrn><trntype>DEBIT</trntype><dtposted>20000610</dtposted><trnamt>-42.00</trnamt><memo>bookshop</memo></stmttrn>
      <stmttrn><trntype>CREDIT</trntype><dtposted>20000612</dtposted><trnamt>1800.00</trnamt><memo>salary</memo></stmttrn>
    </banktranlist>
  </stmt>
  <stmt curdef="EUR">
    <acct owner="dave">
      <acctid>IT99-0002</acctid>
      <accttype>SAVINGS</accttype>
    </acct>
    <ledgerbal><balamt>9100.00</balamt><dtasof>20000615</dtasof></ledgerbal>
    <banktranlist>
      <stmttrn><trntype>CREDIT</trntype><dtposted>20000601</dtposted><trnamt>9100.00</trnamt></stmttrn>
    </banktranlist>
  </stmt>
</ofx>
`

func main() {
	res, err := xmlparse.Parse(statements, xmlparse.Options{
		Loader: xmlparse.MapLoader{"ofx.dtd": ofxDTD},
	})
	if err != nil {
		log.Fatal(err)
	}

	dir := subjects.NewDirectory()
	must(dir.AddGroup("Tellers"))
	must(dir.AddGroup("Auditors"))
	must(dir.AddUser("carla"))
	must(dir.AddUser("dave"))
	must(dir.AddUser("tina", "Tellers"))
	must(dir.AddUser("axel", "Auditors"))

	store := authz.NewStore()
	// Customers: the whole statement of each owned account, found by a
	// condition on the acct/@owner value relative to the stmt element.
	for _, customer := range []string{"carla", "dave"} {
		tuple := fmt.Sprintf(`<<%s,*,*>,ofx.dtd://stmt[acct/@owner="%s"],read,+,R>`, customer, customer)
		must(store.Add(authz.SchemaLevel, authz.MustParse(tuple)))
	}
	// Tellers from branch machines: everything except credit limits.
	must(store.Add(authz.SchemaLevel, authz.MustParse(
		`<<Tellers,10.20.*,*>,ofx.dtd:/ofx,read,+,R>`)))
	must(store.Add(authz.SchemaLevel, authz.MustParse(
		`<<Tellers,*,*>,ofx.dtd://acct/@limit,read,-,L>`)))
	// Auditors: full access, but only inside the audit window.
	audit := authz.MustParse(`<<Auditors,*,*>,ofx.dtd:/ofx,read,+,R>`)
	audit.Validity = authz.Validity{
		NotBefore: time.Date(2000, 7, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2000, 7, 31, 23, 59, 59, 0, time.UTC),
	}
	must(store.Add(authz.SchemaLevel, audit))

	eng := core.NewEngine(dir, store)
	type trial struct {
		rq subjects.Requester
		at time.Time
	}
	inAudit := time.Date(2000, 7, 15, 10, 0, 0, 0, time.UTC)
	outAudit := time.Date(2000, 9, 1, 10, 0, 0, 0, time.UTC)
	trials := []trial{
		{subjects.Requester{User: "carla", IP: "93.40.1.2", Host: "home.isp.it"}, outAudit},
		{subjects.Requester{User: "tina", IP: "10.20.3.4", Host: "desk.branch12.bank.example"}, outAudit},
		{subjects.Requester{User: "tina", IP: "93.40.9.9", Host: "cafe.isp.it"}, outAudit}, // off branch
		{subjects.Requester{User: "axel", IP: "10.9.9.9", Host: "audit.bank.example"}, inAudit},
		{subjects.Requester{User: "axel", IP: "10.9.9.9", Host: "audit.bank.example"}, outAudit},
	}
	for _, tr := range trials {
		req := core.Request{Requester: tr.rq, URI: "statements.xml", DTDURI: "ofx.dtd", At: tr.at}
		view, err := eng.ComputeView(req, res.Doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s at %s ---\n", tr.rq, tr.at.Format("2006-01-02"))
		if view.Empty() {
			fmt.Println("(nothing visible)")
			continue
		}
		fmt.Println(view.XMLIndent("  "))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
