// Healthcare: content-dependent, schema-level protection of patient
// records — the kind of selective distribution the paper's introduction
// motivates.
//
// One DTD describes patient records; many documents are instances of
// it. Authorizations are written once, at the schema level, and govern
// every record:
//
//   - physicians see complete records;
//
//   - nurses see records except psychiatric notes (an exception via a
//     negative authorization on a more specific object);
//
//   - the billing office sees only administrative and billing data;
//
//   - each patient sees their own record, via a condition on the
//     record's patient identifier — content-dependent access from a
//     single schema-level rule.
//
//     go run ./examples/healthcare
package main

import (
	"fmt"
	"log"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/subjects"
	"xmlsec/internal/xmlparse"
)

const recordsDTD = `<!ELEMENT records (patient+)>
<!ELEMENT patient (admin, clinical, billing)>
<!ATTLIST patient id CDATA #REQUIRED>
<!ELEMENT admin (name, contact)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT clinical (diagnosis*, prescription*, psychiatric?)>
<!ELEMENT diagnosis (#PCDATA)>
<!ELEMENT prescription (#PCDATA)>
<!ELEMENT psychiatric (#PCDATA)>
<!ELEMENT billing (invoice*)>
<!ELEMENT invoice (#PCDATA)>
<!ATTLIST invoice paid (yes|no) "no">
`

const wardFile = `<?xml version="1.0"?>
<!DOCTYPE records SYSTEM "records.dtd">
<records>
  <patient id="p17">
    <admin>
      <name>Maria Rossi</name>
      <contact>via Comelico 39, Milano</contact>
    </admin>
    <clinical>
      <diagnosis>Hypertension</diagnosis>
      <prescription>ACE inhibitor, 10mg</prescription>
      <psychiatric>Anxiety episodes, under evaluation</psychiatric>
    </clinical>
    <billing>
      <invoice paid="yes">120.00</invoice>
    </billing>
  </patient>
  <patient id="p42">
    <admin>
      <name>Ugo Bianchi</name>
      <contact>p.za Leonardo 32, Milano</contact>
    </admin>
    <clinical>
      <diagnosis>Fractured wrist</diagnosis>
      <prescription>Cast, 6 weeks</prescription>
    </clinical>
    <billing>
      <invoice paid="no">340.00</invoice>
    </billing>
  </patient>
</records>`

// Schema-level authorizations: written once against the DTD, they
// protect every document instance. A patient's own access is
// content-dependent: the path condition compares the record's id
// attribute with the patient's identifier.
var schemaAuths = []string{
	`<<Physicians,*,*>,records.dtd:/records,read,+,R>`,
	`<<Nurses,*,*.ward.hospital.org>,records.dtd:/records/patient,read,+,R>`,
	`<<Nurses,*,*>,records.dtd://psychiatric,read,-,R>`,
	`<<Billing,*,*>,records.dtd:/records/patient,read,+,L>`,
	`<<Billing,*,*>,records.dtd://admin,read,+,R>`,
	`<<Billing,*,*>,records.dtd://billing,read,+,R>`,
	`<<maria,*,*>,records.dtd:/records/patient[./@id="p17"],read,+,R>`,
}

func main() {
	res, err := xmlparse.Parse(wardFile, xmlparse.Options{
		Loader: xmlparse.MapLoader{"records.dtd": recordsDTD},
	})
	if err != nil {
		log.Fatal(err)
	}

	dir := subjects.NewDirectory()
	for _, g := range []string{"Physicians", "Nurses", "Billing"} {
		must(dir.AddGroup(g))
	}
	must(dir.AddUser("drwho", "Physicians"))
	must(dir.AddUser("nancy", "Nurses"))
	must(dir.AddUser("bill", "Billing"))
	must(dir.AddUser("maria")) // patient p17

	store := authz.NewStore()
	for _, t := range schemaAuths {
		must(store.Add(authz.SchemaLevel, authz.MustParse(t)))
	}

	eng := core.NewEngine(dir, store)
	requesters := []subjects.Requester{
		{User: "drwho", IP: "10.1.0.2", Host: "er.hospital.org"},
		{User: "nancy", IP: "10.1.0.9", Host: "desk3.ward.hospital.org"},
		{User: "nancy", IP: "93.45.1.1", Host: "home.isp.example"}, // off site
		{User: "bill", IP: "10.2.0.4", Host: "acct.hospital.org"},
		{User: "maria", IP: "93.45.7.7", Host: "laptop.isp.example"},
	}
	for _, rq := range requesters {
		req := core.Request{Requester: rq, URI: "ward.xml", DTDURI: "records.dtd"}
		view, err := eng.ComputeView(req, res.Doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- view of %s ---\n", rq)
		if view.Empty() {
			fmt.Println("(empty: nothing visible)")
			continue
		}
		fmt.Println(view.XMLIndent("  "))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
