// Quickstart: protect one XML document with element-level
// authorizations and compute two users' views of it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/subjects"
	"xmlsec/internal/xmlparse"
)

const doc = `<?xml version="1.0"?>
<memo>
  <subject>Quarterly results</subject>
  <body>Revenue grew 12%.</body>
  <internal>
    <draft>Do not publish before Friday.</draft>
  </internal>
</memo>`

func main() {
	// 1. Parse the document.
	res, err := xmlparse.Parse(doc, xmlparse.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Declare subjects: a staff group with one member.
	dir := subjects.NewDirectory()
	must(dir.AddGroup("Staff"))
	must(dir.AddUser("erin", "Staff"))
	must(dir.AddUser("guest"))

	// 3. Grant everyone the memo recursively, but deny the internal
	// section to everyone except Staff. "Most specific object takes
	// precedence": the denial on <internal> overrides the grant from
	// the root for non-staff; for Staff the more specific subject wins.
	store := authz.NewStore()
	for _, tuple := range []string{
		`<<Public,*,*>,memo.xml:/memo,read,+,R>`,
		`<<Public,*,*>,memo.xml:/memo/internal,read,-,R>`,
		`<<Staff,*,*>,memo.xml:/memo/internal,read,+,R>`,
	} {
		must(store.Add(authz.InstanceLevel, authz.MustParse(tuple)))
	}

	// 4. Compute each requester's view.
	eng := core.NewEngine(dir, store)
	for _, user := range []string{"erin", "guest"} {
		req := core.Request{
			Requester: subjects.Requester{User: user, IP: "10.0.0.7", Host: "pc7.corp.example"},
			URI:       "memo.xml",
		}
		view, err := eng.ComputeView(req, res.Doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- view of %s (%d of %d nodes visible) ---\n",
			user, view.Stats.Kept, view.Stats.Nodes)
		fmt.Println(view.XMLIndent("  "))
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
