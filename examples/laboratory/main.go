// Laboratory: the paper's running example, end to end, over HTTP.
//
// The program assembles the site of Examples 1 and 2 — the laboratory
// DTD (Figure 1), the CSlab document (Figure 3), the four access
// authorizations, users Tom (group Foreign) and Sam (group Admin) —
// starts the security processor on a loopback port, and fetches the
// document as each user, printing the views the server returns. It
// also fetches the loosened DTD a requester would use to validate them.
//
//	go run ./examples/laboratory
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"xmlsec/internal/authz"
	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
)

func main() {
	site := server.NewSite()
	site.ValidateViews = true

	// Subjects: the directory of the examples plus credentials.
	site.Directory = labexample.Directory()
	site.Engine.Hierarchy.Dir = site.Directory
	for _, u := range []struct{ name, pass string }{
		{"Tom", "tom-secret"}, {"Sam", "sam-secret"},
	} {
		if err := site.Users.Set(u.name, u.pass); err != nil {
			log.Fatal(err)
		}
	}

	// Objects: the DTD and the document.
	if err := site.Docs.AddDTD(labexample.DTDURI, labexample.DTDSource); err != nil {
		log.Fatal(err)
	}
	if err := site.Docs.AddDocument(labexample.DocURI, labexample.DocSource); err != nil {
		log.Fatal(err)
	}

	// Authorizations: Example 1, loaded through the XACL markup the
	// processor uses (the first tuple is schema level).
	for i, tuple := range labexample.AuthTuples {
		a := authz.MustParse(tuple)
		x := &authz.XACL{About: a.Object.URI, Level: authz.InstanceLevel, Auths: []*authz.Authorization{a}}
		if i == 0 {
			x.Level = authz.SchemaLevel
		}
		if _, err := site.LoadXACL(x.String()); err != nil {
			log.Fatal(err)
		}
	}

	// Simulate the paper's network locations over loopback: trust the
	// X-Forwarded-For header (the demo is its own trusted proxy) and
	// teach the resolver the example hosts, so Tom connects "from"
	// infosys.bld1.it at 130.100.50.8 and Sam from 130.89.56.8 —
	// exactly the triples Example 2 uses.
	site.TrustForwardedFor = true
	res := site.Resolver.(*server.StaticResolver)
	res.Add("130.89.56.8", "adminhost.lab.com")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: site.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	for _, u := range []struct{ name, pass, from string }{
		{"Tom", "tom-secret", "130.100.50.8"}, // infosys.bld1.it — Example 2
		{"Sam", "sam-secret", "130.89.56.8"},  // the Admin host of Example 1
		{"", "", "200.1.2.3"},                 // anonymous, outside
	} {
		label := u.name
		if label == "" {
			label = "anonymous"
		}
		body, status := get(base+"/docs/"+labexample.DocURI, u.name, u.pass, u.from)
		fmt.Printf("--- GET /docs/%s as %s from %s (HTTP %d) ---\n%s\n",
			labexample.DocURI, label, u.from, status, body)
	}

	body, status := get(base+"/dtds/"+labexample.DTDURI, "", "", "200.1.2.3")
	fmt.Printf("--- GET /dtds/%s (HTTP %d) — the loosened DTD ---\n%s\n", labexample.DTDURI, status, body)
}

func get(url, user, pass, from string) (string, int) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Forwarded-For", from)
	if user != "" {
		req.SetBasicAuth(user, pass)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b), resp.StatusCode
}
