module xmlsec

go 1.22
