// Package xmlsec_test holds the repository-level benchmark harness: one
// testing.B benchmark (family) per experiment in DESIGN.md §2. Run with
//
//	go test -bench=. -benchmem
//
// The xsbench command reproduces the same experiments as formatted
// tables; these benchmarks are the statistically careful counterpart.
package xmlsec_test

import (
	"fmt"
	"strings"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/dom"
	"xmlsec/internal/dtd"
	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
	"xmlsec/internal/subjects"
	"xmlsec/internal/workload"
	"xmlsec/internal/xmlparse"
	"xmlsec/internal/xpath"
)

// --- E3/E6: the paper's worked example through the full processor ---

// BenchmarkComputeViewCSlab measures compute-view on the Figure 3
// document for Example 2's requester.
func BenchmarkComputeViewCSlab(b *testing.B) {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ComputeView(req, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: propagation vs naive labeling, swept over size and auths ---

type onlineCase struct {
	doc   *dom.Document
	eng   *core.Engine
	req   core.Request
	nodes int
}

func onlineSetup(b *testing.B, depth, fanout, nauths int) onlineCase {
	b.Helper()
	dc := workload.DocConfig{Depth: depth, Fanout: fanout, Attrs: 2, Seed: 1}
	cfg := workload.AuthConfig{
		N: nauths, Doc: dc, SchemaFraction: 0.25,
		PredicateFraction: 0.5, WeakFraction: 0.2, Seed: int64(nauths),
	}.Norm()
	doc := workload.GenDocument(dc)
	inst, schema := workload.GenAuths(cfg)
	store := authz.NewStore()
	if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
		b.Fatal(err)
	}
	if err := store.AddAll(authz.SchemaLevel, schema); err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(workload.GenDirectory(cfg.Pop), store)
	req := core.Request{
		Requester: workload.GenRequester(cfg.Pop, 7),
		URI:       cfg.URI, DTDURI: cfg.DTDURI,
	}
	return onlineCase{doc: doc, eng: eng, req: req, nodes: doc.CountNodes()}
}

// BenchmarkLabelPropagation is the paper's algorithm (E5 fast path).
func BenchmarkLabelPropagation(b *testing.B) {
	for _, size := range []struct{ depth, fanout int }{{2, 3}, {3, 4}, {4, 5}} {
		for _, na := range []int{4, 16, 64} {
			c := onlineSetup(b, size.depth, size.fanout, na)
			b.Run(fmt.Sprintf("nodes=%d/auths=%d", c.nodes, na), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := c.eng.Label(c.req, c.doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNaiveLabelingMemo is the no-propagation baseline with shared
// node-sets (E5).
func BenchmarkNaiveLabelingMemo(b *testing.B) {
	for _, size := range []struct{ depth, fanout int }{{2, 3}, {3, 4}, {4, 5}} {
		for _, na := range []int{4, 16, 64} {
			c := onlineSetup(b, size.depth, size.fanout, na)
			b.Run(fmt.Sprintf("nodes=%d/auths=%d", c.nodes, na), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.eng.NaiveLabel(c.req, c.doc, true); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNaiveLabelingFull re-evaluates every path expression per
// node (E5's full strawman); sizes are kept small because it explodes.
func BenchmarkNaiveLabelingFull(b *testing.B) {
	for _, na := range []int{4, 16} {
		c := onlineSetup(b, 2, 3, na)
		b.Run(fmt.Sprintf("nodes=%d/auths=%d", c.nodes, na), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.eng.NaiveLabel(c.req, c.doc, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: the four-step processor cycle, step by step ---

func BenchmarkPipelineParse(b *testing.B) {
	loader := xmlparse.MapLoader{labexample.DTDURI: labexample.DTDSource}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xmlparse.Parse(labexample.DocSource, xmlparse.Options{Loader: loader}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineLabel(b *testing.B) {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Label(req, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinePrune(b *testing.B) {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	lb, _, err := eng.Label(req, doc)
	if err != nil {
		b.Fatal(err)
	}
	pol := eng.PolicyFor(req.URI)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := doc.Clone()
		core.PruneDoc(work, lb, pol)
	}
}

func BenchmarkPipelineUnparse(b *testing.B) {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	view, err := eng.ComputeView(req, doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := view.WriteXML(&sb, dom.WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineFullCycle is the complete on-line transformation:
// parse, label, prune, unparse — what the server pays per request with
// ParsePerRequest set.
func BenchmarkPipelineFullCycle(b *testing.B) {
	loader := xmlparse.MapLoader{labexample.DTDURI: labexample.DTDSource}
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := xmlparse.Parse(labexample.DocSource, xmlparse.Options{Loader: loader})
		if err != nil {
			b.Fatal(err)
		}
		view, err := eng.ComputeView(req, res.Doc)
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		if err := view.WriteXML(&sb, dom.WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: loosening and loosened validation ---

func BenchmarkLoosenDTD(b *testing.B) {
	d := dtd.MustParse(labexample.DTDSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Loosen()
	}
}

func BenchmarkValidateViewLoosened(b *testing.B) {
	d := dtd.MustParse(labexample.DTDSource)
	loose := d.Loosen()
	loose.CompileAll()
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	view, err := eng.ComputeView(req, doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errs := loose.Validate(view.Materialize(), dtd.ValidateOptions{IgnoreIDs: true}); errs != nil {
			b.Fatal(errs)
		}
	}
}

// --- E8: subject hierarchy evaluation ---

func BenchmarkSubjectLeq(b *testing.B) {
	dir := workload.GenDirectory(workload.PopConfig{Users: 500, Groups: 50, Seed: 1})
	h := subjects.Hierarchy{Dir: dir}
	lo := subjects.MustNewSubject("u1", "10.1.2.3", "h1.dom1.org")
	hi := subjects.MustNewSubject("g1", "10.1.*", "*.dom1.org")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Leq(lo, hi)
	}
}

func BenchmarkMostSpecific(b *testing.B) {
	dir := workload.GenDirectory(workload.PopConfig{Users: 500, Groups: 50, Seed: 1})
	h := subjects.Hierarchy{Dir: dir}
	cfg := workload.AuthConfig{N: 16, Pop: workload.PopConfig{Users: 500, Groups: 50, Seed: 1}, Seed: 11}.Norm()
	inst, schema := workload.GenAuths(cfg)
	all := append(inst, schema...)
	sub := func(a *authz.Authorization) subjects.Subject { return a.Subject }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subjects.MostSpecific(h, all, sub)
	}
}

// --- E9: the Example 1 path expressions ---

func BenchmarkXPathExample1(b *testing.B) {
	doc, _ := labexample.Parse()
	exprs := map[string]string{
		"absolute":   `/laboratory/project`,
		"descendant": `/laboratory//paper[./@category="private"]`,
		"predicate":  `//project[./@type="internal"]`,
		"ancestor":   `//fund/ancestor::project`,
	}
	for name, src := range exprs {
		p := xpath.MustCompile(src)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SelectDoc(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkXPathCompile(b *testing.B) {
	src := `/laboratory//paper[./@category="private"]`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXPathScaling evaluates a descendant query over growing
// documents, isolating the object-evaluation cost the set-at-a-time
// strategy amortizes.
func BenchmarkXPathScaling(b *testing.B) {
	for _, depth := range []int{3, 4, 5} {
		doc := workload.GenDocument(workload.DocConfig{Depth: depth, Fanout: 4, Attrs: 2, Seed: 2})
		p := xpath.MustCompile(`//` + workload.ElemName(depth, 0) + `[./@a0='1']`)
		b.Run(fmt.Sprintf("nodes=%d", doc.CountNodes()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SelectDoc(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- supporting costs: XACL parsing, document parsing at scale ---

func BenchmarkXACLParse(b *testing.B) {
	x := &authz.XACL{About: labexample.DocURI}
	for _, t := range labexample.AuthTuples[1:] {
		x.Auths = append(x.Auths, authz.MustParse(t))
	}
	src := x.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := authz.ParseXACL(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseScaling(b *testing.B) {
	for _, depth := range []int{3, 4, 5} {
		doc := workload.GenDocument(workload.DocConfig{Depth: depth, Fanout: 4, Attrs: 2, Seed: 3})
		var sb strings.Builder
		if err := doc.Write(&sb, dom.WriteOptions{}); err != nil {
			b.Fatal(err)
		}
		src := sb.String()
		b.Run(fmt.Sprintf("bytes=%d", len(src)), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := xmlparse.Parse(src, xmlparse.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation: the server's view cache on/off ---

func benchSite(b *testing.B) *server.Site {
	b.Helper()
	site := server.NewSite()
	site.Directory = labexample.Directory()
	site.Engine.Hierarchy.Dir = site.Directory
	if err := site.Docs.AddDTD(labexample.DTDURI, labexample.DTDSource); err != nil {
		b.Fatal(err)
	}
	if err := site.Docs.AddDocument(labexample.DocURI, labexample.DocSource); err != nil {
		b.Fatal(err)
	}
	for i, tuple := range labexample.AuthTuples {
		level := authz.InstanceLevel
		if i == 0 {
			level = authz.SchemaLevel
		}
		if err := site.Auths.Add(level, authz.MustParse(tuple)); err != nil {
			b.Fatal(err)
		}
	}
	return site
}

func BenchmarkProcessNoCache(b *testing.B) {
	site := benchSite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := site.Process(labexample.Tom, labexample.DocURI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessWithCache(b *testing.B) {
	site := benchSite(b).EnableViewCache(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := site.Process(labexample.Tom, labexample.DocURI); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension: tree diff and write-through-views merge ---

func BenchmarkDiffIdentical(b *testing.B) {
	doc := workload.GenDocument(workload.DocConfig{Depth: 4, Fanout: 4, Attrs: 2, Seed: 5})
	other := doc.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := dom.Diff(doc, other); len(cs) != 0 {
			b.Fatal("identical docs should not differ")
		}
	}
}

func BenchmarkMergeViewNoOp(b *testing.B) {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
	view, err := eng.ComputeView(req, doc)
	if err != nil {
		b.Fatal(err)
	}
	writable := func(*dom.Node) bool { return false }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MergeView(doc, view, view.Materialize(), writable); err != nil {
			b.Fatal(err)
		}
	}
}
