// Command xmlsecd runs the security processor as an HTTP daemon over a
// site configuration directory (see server.LoadSiteDir for the layout).
//
// Usage:
//
//	xmlsecd -site ./site -addr :8080
//
// Endpoints:
//
//	GET /docs/<uri>        view of the document for the authenticated requester
//	PUT /docs/<uri>        update through the view (write authority)
//	POST /docs/<uri>/update apply an update script (write authority; see
//	                       docs/UPDATES.md for the script forms)
//	GET /query/<uri>       XPath query over the view (?q=<expr>)
//	GET /dtds/<uri>        loosened DTD
//	GET /healthz           liveness
//	GET /readyz            readiness (503 until WAL recovery completes)
//	GET /metrics           Prometheus text exposition (stage latencies, HTTP
//	                       counters, cache and store gauges)
//	GET /statz             the same metrics as a JSON snapshot
//	GET /debug/traces      sampled request traces (-trace; see docs/TRACING.md)
//	GET /debug/traces/<id> one trace's span waterfall
//	GET /debug/slowz       slowest requests with their cost cards (-slowlog)
//	GET /debug/cachez      view-cache contents (-view-cache)
//	GET /debug/authindexz  node-set index contents
//	GET /debug/classz      equivalence-class universe (-view-cache)
//	GET /debug/walz        write-ahead log state (-data-dir)
//	GET /debug/pprof/      runtime profiles (-pprof)
//	POST /admin/xacl       install an XACL document (-admin; admin group only)
//
// With -data-dir the daemon is durable: every mutation (document
// update, XACL load, policy change) is written ahead to a log in that
// directory and survives a crash or restart; see docs/PERSISTENCE.md.
// The daemon listens BEFORE recovery begins: /healthz and /readyz
// answer during replay (the latter with 503), while the stateful
// routes refuse traffic until the state is fully recovered.
//
// Requesters authenticate with HTTP Basic credentials from users.conf;
// requests without credentials are served as "anonymous". Every
// response carries an X-Request-ID header that also appears in the
// audit record, structured log lines, slow-log entries and, for
// sampled requests, as the trace ID. Logs are structured (log/slog);
// -log-format selects text (default) or json.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlsec/internal/server"
	"xmlsec/internal/trace"
	"xmlsec/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	siteDir := flag.String("site", "site", "site configuration directory")
	validate := flag.Bool("validate-views", false, "re-validate every view against the loosened DTD")
	perRequest := flag.Bool("parse-per-request", false, "re-parse documents on every request (fully on-line cycle)")
	cacheSize := flag.Int("view-cache", 0, "enable the class-keyed view cache with this many entries (0 = off)")
	auditPath := flag.String("audit", "", "append JSON-lines audit records to this file")
	auditMaxBytes := flag.Int64("audit-max-bytes", 0, "rotate the audit file past this size (0 = never rotate)")
	auditKeep := flag.Int("audit-keep", 3, "rotated audit files to keep (with -audit-max-bytes)")
	traceOn := flag.Bool("trace", false, "record request traces, served at /debug/traces")
	traceBuffer := flag.Int("trace-buffer", 64, "completed traces kept in each of the recent and slow rings")
	traceSample := flag.Int("trace-sample", 0, fmt.Sprintf("trace every Nth request (0 = default 1-in-%d; 1 = every request)", trace.DefaultSampleEvery))
	traceSlow := flag.Duration("trace-slow", 0, "slow-capture threshold (0 = default 250ms; negative disables)")
	slowLog := flag.Duration("slowlog", 250*time.Millisecond, "capture requests at/above this duration with their cost cards at /debug/slowz (0 = capture everything; negative disables)")
	slowLogMax := flag.Int("slowlog-max", 64, "worst requests kept on the /debug/slowz board")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	debugGroup := flag.String("debug-group", "", "directory group allowed to read /statz and /debug/* (empty = open)")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles at /debug/pprof/ (exposes process internals)")
	dataDir := flag.String("data-dir", "", "durable state directory (write-ahead log + snapshots); empty = in-memory only")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always, interval, or never (with -data-dir)")
	snapshotBytes := flag.Int64("snapshot-bytes", server.DefaultSnapshotBytes, "compact the log into a snapshot past this many replayable bytes")
	adminOn := flag.Bool("admin", false, "serve POST /admin/xacl for members of the admin group")
	adminGroup := flag.String("admin-group", server.DefaultAdminGroup, "directory group allowed to call the admin endpoints (with -admin)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "xmlsecd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	sync := wal.SyncAlways
	if *dataDir != "" {
		var err error
		sync, err = wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: %v\n", err)
			os.Exit(1)
		}
	}

	site, err := server.LoadSiteDir(*siteDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlsecd: %v\n", err)
		os.Exit(1)
	}
	site.Logger = logger
	site.ValidateViews = *validate
	site.ParsePerRequest = *perRequest
	site.EnablePprof = *pprofOn
	site.EnableAdminAPI = *adminOn
	site.AdminGroup = *adminGroup
	site.DebugGroup = *debugGroup
	if *cacheSize > 0 {
		site.EnableViewCache(*cacheSize)
	}
	if *slowLog >= 0 {
		site.EnableSlowLog(*slowLog, *slowLogMax)
	}
	if *traceOn {
		site.EnableTracing(trace.Options{
			Capacity:      *traceBuffer,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	if *auditPath != "" {
		w, err := site.SetAuditFile(*auditPath, *auditMaxBytes, *auditKeep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: opening audit log: %v\n", err)
			os.Exit(1)
		}
		defer w.Close()
	}

	// Listen BEFORE recovering: probes and introspection answer while
	// the log replays — /readyz with 503, so load balancers see the
	// process without routing traffic to it — and the stateful routes
	// are 503-gated until the state is complete.
	if *dataDir != "" {
		site.SetReady(false)
	}
	srv := &http.Server{
		Handler:           site.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *dataDir != "" {
		logger.Info("recovering durable state", "data_dir", *dataDir)
		if err := site.EnableDurability(*dataDir, server.DurabilityOptions{
			Sync:          sync,
			SnapshotBytes: *snapshotBytes,
		}); err != nil {
			logger.Error("recovery failed", "data_dir", *dataDir, "error", err.Error())
			srv.Close()
			os.Exit(1)
		}
		st := site.WALStats()
		logger.Info("recovered durable state",
			"data_dir", *dataDir, "snapshot_lsn", st.SnapshotLSN,
			"replayed", st.ReplayRecords, "fsync", sync.String())
		site.SetReady(true)
	}

	logger.Info("serving",
		"addr", ln.Addr().String(), "documents", len(site.Docs.URIs()),
		"users", site.Users.Len(), "authorizations", site.Auths.Len())

	// Drain in-flight requests on SIGINT/SIGTERM, then flush the audit
	// file via the deferred Close.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "error", err.Error())
		}
		// In-flight mutations have drained; flush the log tail so a
		// clean shutdown never loses interval-fsync'd records.
		if err := site.CloseDurability(); err != nil {
			logger.Error("closing write-ahead log failed", "error", err.Error())
		}
		close(idle)
	}()
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	}
	<-idle
}
