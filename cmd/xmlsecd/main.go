// Command xmlsecd runs the security processor as an HTTP daemon over a
// site configuration directory (see server.LoadSiteDir for the layout).
//
// Usage:
//
//	xmlsecd -site ./site -addr :8080
//
// Endpoints:
//
//	GET /docs/<uri>  view of the document for the authenticated requester
//	PUT /docs/<uri>  update through the view (write authority)
//	GET /query/<uri> XPath query over the view (?q=<expr>)
//	GET /dtds/<uri>  loosened DTD
//	GET /healthz     liveness
//	GET /metrics     Prometheus text exposition (stage latencies, HTTP
//	                 counters, cache and store gauges)
//	GET /statz       the same metrics as a JSON snapshot
//
// Requesters authenticate with HTTP Basic credentials from users.conf;
// requests without credentials are served as "anonymous".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlsec/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	addr := flag.String("addr", ":8080", "listen address")
	siteDir := flag.String("site", "site", "site configuration directory")
	validate := flag.Bool("validate-views", false, "re-validate every view against the loosened DTD")
	perRequest := flag.Bool("parse-per-request", false, "re-parse documents on every request (fully on-line cycle)")
	cacheSize := flag.Int("view-cache", 0, "enable the per-requester view cache with this many entries (0 = off)")
	auditPath := flag.String("audit", "", "append JSON-lines audit records to this file")
	flag.Parse()

	site, err := server.LoadSiteDir(*siteDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlsecd: %v\n", err)
		os.Exit(1)
	}
	site.ValidateViews = *validate
	site.ParsePerRequest = *perRequest
	if *cacheSize > 0 {
		site.EnableViewCache(*cacheSize)
	}
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: opening audit log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		site.SetAuditLog(f)
	}

	log.Printf("xmlsecd: %d documents, %d users, %d authorizations; listening on %s (metrics at /metrics, /statz)",
		len(site.Docs.URIs()), site.Users.Len(), site.Auths.Len(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           site.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Drain in-flight requests on SIGINT/SIGTERM, then flush the audit
	// file via the deferred Close.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("xmlsecd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("xmlsecd: shutdown: %v", err)
		}
		close(idle)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("xmlsecd: %v", err)
	}
	<-idle
}
