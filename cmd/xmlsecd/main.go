// Command xmlsecd runs the security processor as an HTTP daemon over a
// site configuration directory (see server.LoadSiteDir for the layout).
//
// Usage:
//
//	xmlsecd -site ./site -addr :8080
//
// Endpoints:
//
//	GET /docs/<uri>        view of the document for the authenticated requester
//	PUT /docs/<uri>        update through the view (write authority)
//	GET /query/<uri>       XPath query over the view (?q=<expr>)
//	GET /dtds/<uri>        loosened DTD
//	GET /healthz           liveness
//	GET /metrics           Prometheus text exposition (stage latencies, HTTP
//	                       counters, cache and store gauges)
//	GET /statz             the same metrics as a JSON snapshot
//	GET /debug/traces      sampled request traces (-trace; see docs/TRACING.md)
//	GET /debug/traces/<id> one trace's span waterfall
//	GET /debug/pprof/      runtime profiles (-pprof)
//	POST /admin/xacl       install an XACL document (-admin; admin group only)
//
// With -data-dir the daemon is durable: every mutation (document
// update, XACL load, policy change) is written ahead to a log in that
// directory and survives a crash or restart; see docs/PERSISTENCE.md.
//
// Requesters authenticate with HTTP Basic credentials from users.conf;
// requests without credentials are served as "anonymous". Every
// response carries an X-Request-ID header that also appears in the
// audit record and, for sampled requests, as the trace ID.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlsec/internal/server"
	"xmlsec/internal/trace"
	"xmlsec/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	addr := flag.String("addr", ":8080", "listen address")
	siteDir := flag.String("site", "site", "site configuration directory")
	validate := flag.Bool("validate-views", false, "re-validate every view against the loosened DTD")
	perRequest := flag.Bool("parse-per-request", false, "re-parse documents on every request (fully on-line cycle)")
	cacheSize := flag.Int("view-cache", 0, "enable the class-keyed view cache with this many entries (0 = off)")
	auditPath := flag.String("audit", "", "append JSON-lines audit records to this file")
	auditMaxBytes := flag.Int64("audit-max-bytes", 0, "rotate the audit file past this size (0 = never rotate)")
	auditKeep := flag.Int("audit-keep", 3, "rotated audit files to keep (with -audit-max-bytes)")
	traceOn := flag.Bool("trace", false, "record request traces, served at /debug/traces")
	traceBuffer := flag.Int("trace-buffer", 64, "completed traces kept in each of the recent and slow rings")
	traceSample := flag.Int("trace-sample", 0, fmt.Sprintf("trace every Nth request (0 = default 1-in-%d; 1 = every request)", trace.DefaultSampleEvery))
	traceSlow := flag.Duration("trace-slow", 0, "slow-capture threshold (0 = default 250ms; negative disables)")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles at /debug/pprof/ (exposes process internals)")
	dataDir := flag.String("data-dir", "", "durable state directory (write-ahead log + snapshots); empty = in-memory only")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always, interval, or never (with -data-dir)")
	snapshotBytes := flag.Int64("snapshot-bytes", server.DefaultSnapshotBytes, "compact the log into a snapshot past this many replayable bytes")
	adminOn := flag.Bool("admin", false, "serve POST /admin/xacl for members of the admin group")
	adminGroup := flag.String("admin-group", server.DefaultAdminGroup, "directory group allowed to call the admin endpoints (with -admin)")
	flag.Parse()

	site, err := server.LoadSiteDir(*siteDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlsecd: %v\n", err)
		os.Exit(1)
	}
	site.ValidateViews = *validate
	site.ParsePerRequest = *perRequest
	site.EnablePprof = *pprofOn
	site.EnableAdminAPI = *adminOn
	site.AdminGroup = *adminGroup
	if *dataDir != "" {
		sync, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: %v\n", err)
			os.Exit(1)
		}
		if err := site.EnableDurability(*dataDir, server.DurabilityOptions{
			Sync:          sync,
			SnapshotBytes: *snapshotBytes,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: recovering %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		st := site.WALStats()
		log.Printf("xmlsecd: recovered from %s (snapshot LSN %d, %d records replayed, fsync=%s)",
			*dataDir, st.SnapshotLSN, st.ReplayRecords, sync)
	}
	if *cacheSize > 0 {
		site.EnableViewCache(*cacheSize)
	}
	if *traceOn {
		site.EnableTracing(trace.Options{
			Capacity:      *traceBuffer,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	if *auditPath != "" {
		w, err := site.SetAuditFile(*auditPath, *auditMaxBytes, *auditKeep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlsecd: opening audit log: %v\n", err)
			os.Exit(1)
		}
		defer w.Close()
	}

	log.Printf("xmlsecd: %d documents, %d users, %d authorizations; listening on %s (metrics at /metrics, /statz)",
		len(site.Docs.URIs()), site.Users.Len(), site.Auths.Len(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           site.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Drain in-flight requests on SIGINT/SIGTERM, then flush the audit
	// file via the deferred Close.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("xmlsecd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("xmlsecd: shutdown: %v", err)
		}
		// In-flight mutations have drained; flush the log tail so a
		// clean shutdown never loses interval-fsync'd records.
		if err := site.CloseDurability(); err != nil {
			log.Printf("xmlsecd: closing write-ahead log: %v", err)
		}
		close(idle)
	}()
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("xmlsecd: %v", err)
	}
	<-idle
}
