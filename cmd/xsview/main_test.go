package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlsec/internal/labexample"
)

// writeLab lays the paper's example out as files for the CLI.
func writeLab(t *testing.T) (docPath string, xacls []string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("laboratory.xml", labexample.DTDSource)
	docPath = write("CSlab.xml", labexample.DocSource)
	dtdXACL := `<xacl about="laboratory.xml" level="schema">
  <authorization>
    <subject ug="Foreign"/>
    <object path="/laboratory//paper[./@category='private']"/>
    <action>read</action><sign>-</sign><type>R</type>
  </authorization>
</xacl>`
	docXACL := `<xacl about="CSlab.xml">
  <authorization>
    <subject ug="Public"/>
    <object path="/laboratory//paper[./@category='public']"/>
    <action>read</action><sign>+</sign><type>RW</type>
  </authorization>
  <authorization>
    <subject ug="Public" sn="*.it"/>
    <object path="project[./@type='public']/manager"/>
    <action>read</action><sign>+</sign><type>RW</type>
  </authorization>
</xacl>`
	return docPath, []string{write("dtd-acl.xml", dtdXACL), write("doc-acl.xml", docXACL)}
}

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outCh <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

func TestRunTomView(t *testing.T) {
	docPath, xacls := writeLab(t)
	out := capture(t, func() error {
		return run(docPath, "CSlab.xml", xacls,
			"Tom", "Foreign", "130.100.50.8", "infosys.bld1.it",
			false, false, "denials-take-precedence", "")
	})
	if strings.Contains(out, "Security Markup") {
		t.Errorf("private paper in CLI output:\n%s", out)
	}
	if !strings.Contains(out, "Bob Codd") || !strings.Contains(out, "XML Views") {
		t.Errorf("expected public content missing:\n%s", out)
	}
}

func TestRunEmptyViewErrors(t *testing.T) {
	docPath, _ := writeLab(t)
	err := run(docPath, "CSlab.xml", nil,
		"nobody", "", "9.9.9.9", "", false, false, "denials-take-precedence", "")
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty view should be reported: %v", err)
	}
}

func TestRunOpenPolicy(t *testing.T) {
	docPath, xacls := writeLab(t)
	out := capture(t, func() error {
		return run(docPath, "CSlab.xml", xacls[:1], // only the schema denial
			"Tom", "Foreign", "130.100.50.8", "infosys.bld1.it",
			false, true, "denials-take-precedence", "")
	})
	// Open policy: everything except the denied private papers.
	if strings.Contains(out, "Security Markup") {
		t.Errorf("denied content visible under open policy:\n%s", out)
	}
	if !strings.Contains(out, "fund") {
		t.Errorf("unlabeled content missing under open policy:\n%s", out)
	}
}

func TestRunBadConflictRule(t *testing.T) {
	docPath, xacls := writeLab(t)
	err := run(docPath, "CSlab.xml", xacls,
		"Tom", "Foreign", "130.100.50.8", "infosys.bld1.it",
		false, false, "coin-flip", "")
	if err == nil {
		t.Error("unknown conflict rule accepted")
	}
}

func TestRunQuery(t *testing.T) {
	docPath, xacls := writeLab(t)
	out := capture(t, func() error {
		return run(docPath, "CSlab.xml", xacls,
			"Tom", "Foreign", "130.100.50.8", "infosys.bld1.it",
			false, false, "denials-take-precedence", "//title")
	})
	if !strings.Contains(out, `count="2"`) {
		t.Errorf("query count wrong:\n%s", out)
	}
	if strings.Contains(out, "Security Markup") {
		t.Errorf("query leaked protected title:\n%s", out)
	}
}
