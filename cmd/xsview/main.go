// Command xsview computes a requester's view of an XML document
// offline: the compute-view algorithm without the HTTP front end.
//
// Usage:
//
//	xsview -doc CSlab.xml -xacl doc.xacl -xacl dtd.xacl \
//	       -user Tom -groups Foreign -ip 130.100.50.8 -host infosys.bld1.it
//
// The document's DOCTYPE system identifier is resolved relative to the
// document's directory. XACL files bind to the document or its DTD via
// their about attribute. With -explain, the final label of every
// element and attribute is printed to stderr before the view.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/dom"
	"xmlsec/internal/subjects"
	"xmlsec/internal/xmlparse"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var xacls repeated
	docPath := flag.String("doc", "", "XML document to compute the view of (required)")
	uri := flag.String("uri", "", "document URI for authorization matching (default: base name of -doc)")
	user := flag.String("user", "anonymous", "requesting user")
	groups := flag.String("groups", "", "comma-separated groups the user belongs to")
	ip := flag.String("ip", "127.0.0.1", "requester IP address")
	host := flag.String("host", "", "requester symbolic host name")
	explain := flag.Bool("explain", false, "print per-node labels and their provenance to stderr")
	query := flag.String("query", "", "XPath query evaluated against the view instead of printing it")
	openPolicy := flag.Bool("open", false, "use the open policy (unlabeled nodes are visible)")
	conflict := flag.String("conflict", "denials-take-precedence", "conflict rule: denials-take-precedence, permissions-take-precedence, nothing-takes-precedence, majority-takes-precedence")
	flag.Var(&xacls, "xacl", "XACL file (repeatable)")
	flag.Parse()

	if *docPath == "" {
		fmt.Fprintln(os.Stderr, "xsview: -doc is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*docPath, *uri, xacls, *user, *groups, *ip, *host, *explain, *openPolicy, *conflict, *query); err != nil {
		fmt.Fprintf(os.Stderr, "xsview: %v\n", err)
		os.Exit(1)
	}
}

func run(docPath, uri string, xacls []string, user, groups, ip, host string, explain, openPolicy bool, conflict, query string) error {
	res, err := xmlparse.ParseFile(docPath, xmlparse.Options{ApplyDefaults: true})
	if err != nil {
		return err
	}
	if uri == "" {
		uri = filepath.Base(docPath)
	}
	dtdURI := ""
	if res.Doc.DocType != nil {
		dtdURI = res.Doc.DocType.SystemID
	}

	dir := subjects.NewDirectory()
	if err := dir.AddUser(user, splitList(groups)...); err != nil {
		return err
	}
	store := authz.NewStore()
	for _, path := range xacls {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		x, err := authz.ParseXACL(string(b))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := store.AddAll(x.Level, x.Auths); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	eng := core.NewEngine(dir, store)
	rule, err := core.ParseConflictRule(conflict)
	if err != nil {
		return err
	}
	eng.Default = core.Policy{Conflict: rule, Open: openPolicy}

	rq := subjects.Requester{User: user, IP: ip, Host: host}
	req := core.Request{Requester: rq, URI: uri, DTDURI: dtdURI}

	if explain {
		// Label a copy and print the labels with their provenance.
		exps, err := eng.Explain(req, res.Doc.Clone())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "requester %s:\n", rq)
		if err := core.WriteExplanation(os.Stderr, exps); err != nil {
			return err
		}
	}

	view, err := eng.ComputeView(req, res.Doc)
	if err != nil {
		return err
	}
	if query != "" {
		result, err := view.QueryResult(query)
		if err != nil {
			return err
		}
		return result.Write(os.Stdout, dom.WriteOptions{Indent: "  ", OmitDecl: true})
	}
	if view.Empty() {
		return fmt.Errorf("the view for %s is empty", rq)
	}
	return view.WriteXML(os.Stdout, dom.WriteOptions{Indent: "  ", OmitDocType: true})
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
