package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const goodXACL = `<xacl about="d.xml">
  <authorization>
    <subject ug="G"/>
    <object path="/a/b"/>
    <action>read</action><sign>+</sign><type>R</type>
  </authorization>
</xacl>`

// captureStdout redirects stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outCh <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	return out, runErr
}

func TestValidateCommand(t *testing.T) {
	good := writeTemp(t, "good.xml", goodXACL)
	out, err := captureStdout(t, func() error { return validate([]string{good}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok (1 authorizations") {
		t.Errorf("validate output: %s", out)
	}
	bad := writeTemp(t, "bad.xml", "<xacl><oops/></xacl>")
	if _, err := captureStdout(t, func() error { return validate([]string{bad}) }); err == nil {
		t.Error("invalid file should make validate fail")
	}
	if err := validate(nil); err == nil {
		t.Error("validate without files should fail")
	}
}

func TestListCommand(t *testing.T) {
	good := writeTemp(t, "good.xml", goodXACL)
	out, err := captureStdout(t, func() error { return list([]string{good}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<<G,*,*>,d.xml:/a/b,read,+,R>") {
		t.Errorf("list output: %s", out)
	}
}

func TestConvertCommand(t *testing.T) {
	stdin := writeTemp(t, "tuples.txt", `
# comment lines are skipped
<<G,*,*>,d.xml:/a,read,+,R>
<<u7,10.0.*,*.it>,d.xml://b,read,-,L>
`)
	old := os.Stdin
	f, err := os.Open(stdin)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = f
	defer func() { os.Stdin = old; f.Close() }()

	out, err := captureStdout(t, func() error { return convert([]string{"d.xml", "instance"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `<xacl about="d.xml" level="instance">`) {
		t.Errorf("convert output: %s", out)
	}
	if !strings.Contains(out, `ip="10.0.*"`) || !strings.Contains(out, `sn="*.it"`) {
		t.Errorf("convert lost subject detail: %s", out)
	}
	if err := convert([]string{"d.xml", "sideways"}); err == nil {
		t.Error("bad level should fail")
	}
	if err := convert([]string{"d.xml"}); err == nil {
		t.Error("missing args should fail")
	}
}

func TestConvertRejectsWeakSchema(t *testing.T) {
	stdin := writeTemp(t, "tuples.txt", `<<G,*,*>,d.dtd:/a,read,+,RW>`)
	old := os.Stdin
	f, err := os.Open(stdin)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = f
	defer func() { os.Stdin = old; f.Close() }()
	if _, err := captureStdout(t, func() error { return convert([]string{"d.dtd", "schema"}) }); err == nil {
		t.Error("weak tuple at schema level should fail")
	}
}
