// Command xacl manages XML Access Control List files.
//
// Usage:
//
//	xacl validate <file>...     check XACL files against the XACL DTD
//	xacl list <file>...         print authorizations as compact tuples
//	xacl convert <about> <level>  read compact tuples on stdin, write XACL
//	xacl dtd                    print the XACL document type definition
//
// The compact tuple form is the paper's, e.g.
//
//	<<Foreign,*,*>,lab.xml:/laboratory//paper[./@category="private"],read,-,R>
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"xmlsec/internal/authz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = validate(os.Args[2:])
	case "list":
		err = list(os.Args[2:])
	case "convert":
		err = convert(os.Args[2:])
	case "dtd":
		fmt.Print(authz.DTDSource)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xacl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xacl validate <file>...
  xacl list <file>...
  xacl convert <about> <instance|schema> < tuples.txt
  xacl dtd`)
	os.Exit(2)
}

func validate(files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("no files given")
	}
	bad := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		x, err := authz.ParseXACL(string(b))
		if err != nil {
			fmt.Printf("%s: INVALID: %v\n", f, err)
			bad++
			continue
		}
		fmt.Printf("%s: ok (%d authorizations, %s level, about %s)\n", f, len(x.Auths), x.Level, x.About)
	}
	if bad > 0 {
		return fmt.Errorf("%d invalid file(s)", bad)
	}
	return nil
}

func list(files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("no files given")
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		x, err := authz.ParseXACL(string(b))
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for _, a := range x.Auths {
			fmt.Println(a)
		}
	}
	return nil
}

func convert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert needs <about> and <instance|schema>")
	}
	level := authz.InstanceLevel
	switch args[1] {
	case "instance":
	case "schema":
		level = authz.SchemaLevel
	default:
		return fmt.Errorf("level must be instance or schema, got %q", args[1])
	}
	x := &authz.XACL{About: args[0], Level: level}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := authz.Parse(line)
		if err != nil {
			return err
		}
		if level == authz.SchemaLevel && a.Type.IsWeak() {
			return fmt.Errorf("weak authorization %s not allowed at schema level", a)
		}
		x.Auths = append(x.Auths, a)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return x.Marshal(os.Stdout)
}
