package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/dom"
	"xmlsec/internal/labexample"
	"xmlsec/internal/workload"
)

// E11 — the mask-based view pipeline against the clone-based one it
// replaced: the full per-request serve path (compute view + unparse),
// measured with the standard library benchmark harness so allocation
// costs are visible. The clone pipeline clones the document, labels and
// prunes the copy, and serializes it; the mask pipeline labels the
// shared document in place, derives a visibility bitmask, and
// serializes straight through the mask. Outputs are byte-identical
// (differential tests pin this); only the cost differs.

// viewBenchResult is one measured (case, pipeline) cell, and the record
// format of BENCH_view.json.
type viewBenchResult struct {
	Case     string  `json:"case"`
	Nodes    int     `json:"nodes"`
	Pipeline string  `json:"pipeline"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func expView() error {
	type benchCase struct {
		name string
		eng  *core.Engine
		req  core.Request
		doc  *dom.Document
	}
	var cases []benchCase

	labEng := core.NewEngine(labexample.Directory(), labexample.Store())
	labDoc, _ := labexample.Parse()
	cases = append(cases, benchCase{
		name: "labexample",
		eng:  labEng,
		req:  core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI},
		doc:  labDoc,
	})

	sizes := []workload.DocConfig{
		{Depth: 3, Fanout: 4, Attrs: 2, Seed: 11},
		{Depth: 4, Fanout: 5, Attrs: 2, Seed: 12},
	}
	if quick {
		sizes = sizes[:1]
	}
	for _, dc := range sizes {
		cfg := workload.AuthConfig{
			N: 32, Doc: dc,
			SchemaFraction:    0.25,
			PredicateFraction: 0.4,
			Seed:              dc.Seed * 31,
		}.Norm()
		doc := workload.GenDocument(dc)
		inst, schema := workload.GenAuths(cfg)
		store := authz.NewStore()
		if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
			return err
		}
		if err := store.AddAll(authz.SchemaLevel, schema); err != nil {
			return err
		}
		eng := core.NewEngine(workload.GenDirectory(cfg.Pop), store)
		cases = append(cases, benchCase{
			name: fmt.Sprintf("gen-d%df%d", dc.Depth, dc.Fanout),
			eng:  eng,
			req: core.Request{
				Requester: workload.GenRequester(cfg.Pop, dc.Seed+7),
				URI:       cfg.URI,
				DTDURI:    cfg.DTDURI,
			},
			doc: doc,
		})
	}

	var results []viewBenchResult
	fmt.Printf("%-14s %-8s %-10s %-14s %-14s %-12s\n",
		"case", "nodes", "pipeline", "ns/op", "bytes/op", "allocs/op")
	for _, c := range cases {
		// Sanity: both pipelines must serve the same bytes before we
		// time them.
		mv, err := c.eng.ComputeView(c.req, c.doc)
		if err != nil {
			return err
		}
		cv, err := c.eng.ComputeViewClone(c.req, c.doc)
		if err != nil {
			return err
		}
		if mv.XMLIndent("  ") != cv.XMLIndent("  ") {
			return fmt.Errorf("%s: pipelines disagree on output", c.name)
		}
		nodes := c.doc.CountNodes()
		var nsClone float64
		for _, p := range []struct {
			name  string
			serve func() error
		}{
			{"clone", func() error {
				view, err := c.eng.ComputeViewClone(c.req, c.doc)
				if err != nil {
					return err
				}
				var sb strings.Builder
				return view.WriteXML(&sb, dom.WriteOptions{Indent: "  "})
			}},
			{"mask", func() error {
				view, err := c.eng.ComputeView(c.req, c.doc)
				if err != nil {
					return err
				}
				var sb strings.Builder
				return view.WriteXML(&sb, dom.WriteOptions{Indent: "  "})
			}},
		} {
			serve := p.serve
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := serve(); err != nil {
						b.Fatal(err)
					}
				}
			})
			r := viewBenchResult{
				Case:     c.name,
				Nodes:    nodes,
				Pipeline: p.name,
				NsPerOp:  float64(br.NsPerOp()),
				BytesOp:  br.AllocedBytesPerOp(),
				AllocsOp: br.AllocsPerOp(),
			}
			results = append(results, r)
			suffix := ""
			if p.name == "clone" {
				nsClone = r.NsPerOp
			} else if nsClone > 0 {
				suffix = fmt.Sprintf("  (%.2fx)", nsClone/r.NsPerOp)
			}
			fmt.Printf("%-14s %-8d %-10s %-14.0f %-14d %-12d%s\n",
				r.Case, r.Nodes, r.Pipeline, r.NsPerOp, r.BytesOp, r.AllocsOp, suffix)
		}
	}
	fmt.Println("(serve path = compute view + unparse; outputs verified byte-identical first)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
