package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
	"xmlsec/internal/subjects"
	"xmlsec/internal/wal"
)

// E18 — the update language against whole-document writes: a mixed
// read/write workload at increasing write fractions, once with each
// logical edit expressed as a targeted update script (POST .../update)
// and once as the equivalent full-document replacement (PUT). Both
// paths run durably (fsync=never, so the log cost measured is bytes,
// not disk stalls); the WAL columns show what the delta records buy —
// the script path journals the script and its targets, the PUT path
// journals the whole document every time.

type updatesBenchResult struct {
	WriteFraction float64 `json:"write_fraction"`
	Mode          string  `json:"mode"` // "script" or "put"
	NsPerOp       float64 `json:"ns_op"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Writes        int     `json:"writes"`
	WALBytes      uint64  `json:"wal_bytes"`
	WALPerWrite   float64 `json:"wal_bytes_per_write"`
}

func expUpdates() error {
	sam := subjects.Requester{User: "Sam", IP: "130.89.56.8", Host: "adminhost.lab.com"}
	mkSite := func() (*server.Site, string, error) {
		site, err := mkLabSite()
		if err != nil {
			return nil, "", err
		}
		if err := site.Auths.Add(authz.InstanceLevel,
			authz.MustParse(`<<Admin,*,*>,CSlab.xml:/laboratory,read,+,R>`)); err != nil {
			return nil, "", err
		}
		if err := site.GrantWrite(authz.InstanceLevel,
			`<<Admin,*,*>,CSlab.xml:/laboratory,write,+,R>`); err != nil {
			return nil, "", err
		}
		dir, err := os.MkdirTemp("", "xsbench-updates-")
		if err != nil {
			return nil, "", err
		}
		if err := site.EnableDurability(dir, server.DurabilityOptions{
			Sync:          wal.SyncNever,
			SnapshotBytes: 1 << 30,
		}); err != nil {
			os.RemoveAll(dir)
			return nil, "", err
		}
		return site, dir, nil
	}

	// The logical edit alternates every manager's name between two
	// values: as a script it is one replace-text op; as a PUT it is the
	// full document with both names substituted.
	names := [2]string{"Ada Turing", "Grace Kahn"}
	scripts := [2]string{
		"replace-text //flname " + names[0],
		"replace-text //flname " + names[1],
	}
	fullDocs := [2]string{}
	for i, n := range names {
		s := strings.ReplaceAll(labexample.DocSource, "Ada Turing", n)
		fullDocs[i] = strings.ReplaceAll(s, "Bob Codd", n)
	}

	fractions := []float64{0.01, 0.10, 0.50}
	if quick {
		fractions = []float64{0.10, 0.50}
	}

	var results []updatesBenchResult
	fmt.Printf("%-8s %-8s %-12s %-12s %-10s %-12s %-14s\n",
		"writes", "mode", "ns/op", "ops/sec", "writes", "wal bytes", "bytes/write")
	for _, f := range fractions {
		period := int(1 / f)
		for _, mode := range []string{"script", "put"} {
			site, dir, err := mkSite()
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			writes, i := 0, 0
			ctx := context.Background()
			br := testing.Benchmark(func(b *testing.B) {
				for ; b.Loop(); i++ {
					if i%period == 0 {
						var err error
						if mode == "script" {
							err = site.ApplyUpdate(ctx, sam, labexample.DocURI, scripts[writes%2])
						} else {
							err = site.Update(sam, labexample.DocURI, fullDocs[writes%2])
						}
						if err != nil {
							b.Fatal(err)
						}
						writes++
						continue
					}
					if _, err := site.Process(sam, labexample.DocURI); err != nil {
						b.Fatal(err)
					}
				}
			})
			st := site.WALStats()
			if err := site.CloseDurability(); err != nil {
				return err
			}
			r := updatesBenchResult{
				WriteFraction: f,
				Mode:          mode,
				NsPerOp:       float64(br.NsPerOp()),
				OpsPerSec:     1e9 / float64(br.NsPerOp()),
				Writes:        writes,
				WALBytes:      st.AppendedBytes,
			}
			if writes > 0 {
				r.WALPerWrite = float64(st.AppendedBytes) / float64(writes)
			}
			results = append(results, r)
			fmt.Printf("%-8s %-8s %-12.0f %-12.0f %-10d %-12d %-14.0f\n",
				fmt.Sprintf("%.0f%%", f*100), mode, r.NsPerOp, r.OpsPerSec,
				r.Writes, r.WALBytes, r.WALPerWrite)
		}
	}
	fmt.Println("(each write is the same logical edit — retitle every manager — expressed")
	fmt.Println(" as a one-op update script or as the equivalent whole-document PUT; both")
	fmt.Println(" run the full secure write path durably with fsync=never. The script path")
	fmt.Println(" journals a delta record, the PUT path the entire document.)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
