package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/dom"
	"xmlsec/internal/labexample"
	"xmlsec/internal/workload"
)

// E16 — the struct-of-arrays arena against the pointer tree it
// flattens, over the same mask pipeline. Both representations run the
// identical serve path (label + mask + unparse through the visibility
// bitmask); the only variable is the document layout the sweeps run
// over: linked Node structs chased pointer by pointer, or parallel
// arrays indexed by preorder position with pre-escaped byte spans.
// Dropping the arena reverts every consumer to the tree code paths, so
// one document measures both layouts.

// domBenchResult is one measured (case, representation, stage) cell,
// and the record format of BENCH_dom.json. Stage "serve" is the full
// steady-state cycle (label + mask + unparse, node-set index warm);
// stage "serve-cold" disables the index so every request re-evaluates
// every applicable path — the XPath-dominated path where the arena
// representation now runs the arena-native evaluator instead of the
// pointer tree; stage "unparse" times serialization alone.
type domBenchResult struct {
	Case     string  `json:"case"`
	Nodes    int     `json:"nodes"`
	Repr     string  `json:"repr"`
	Stage    string  `json:"stage"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func expDom() error {
	type benchCase struct {
		name string
		eng  *core.Engine
		req  core.Request
		doc  *dom.Document
	}
	var cases []benchCase

	labEng := core.NewEngine(labexample.Directory(), labexample.Store())
	labDoc, _ := labexample.Parse()
	cases = append(cases, benchCase{
		name: "labexample",
		eng:  labEng,
		req:  core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI},
		doc:  labDoc,
	})

	sizes := []workload.DocConfig{
		{Depth: 3, Fanout: 4, Attrs: 2, Seed: 21},
		{Depth: 4, Fanout: 5, Attrs: 2, Seed: 22},
		{Depth: 5, Fanout: 5, Attrs: 3, Seed: 23},
	}
	if quick {
		sizes = sizes[:1]
	}
	for _, dc := range sizes {
		cfg := workload.AuthConfig{
			N: 32, Doc: dc,
			SchemaFraction:    0.25,
			PredicateFraction: 0.4,
			Seed:              dc.Seed * 31,
		}.Norm()
		doc := workload.GenDocument(dc)
		inst, schema := workload.GenAuths(cfg)
		store := authz.NewStore()
		if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
			return err
		}
		if err := store.AddAll(authz.SchemaLevel, schema); err != nil {
			return err
		}
		eng := core.NewEngine(workload.GenDirectory(cfg.Pop), store)
		cases = append(cases, benchCase{
			name: fmt.Sprintf("gen-d%df%d", dc.Depth, dc.Fanout),
			eng:  eng,
			req: core.Request{
				Requester: workload.GenRequester(cfg.Pop, dc.Seed+7),
				URI:       cfg.URI,
				DTDURI:    cfg.DTDURI,
			},
			doc: doc,
		})
	}

	var results []domBenchResult
	fmt.Printf("%-14s %-8s %-8s %-9s %-14s %-14s %-12s\n",
		"case", "nodes", "repr", "stage", "ns/op", "bytes/op", "allocs/op")
	bench := func(fn func() error) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, c := range cases {
		if c.doc.ArenaIfBuilt() == nil {
			c.doc.BuildArena()
		}
		// Sanity: both layouts must serve the same bytes before we time
		// them. The arena serve runs first, then the arena is dropped
		// and the identical request replays over the tree.
		av, err := c.eng.ComputeView(c.req, c.doc)
		if err != nil {
			return err
		}
		arenaXML := av.XMLIndent("  ")
		hint := c.doc.Arena().SizeHint()
		c.doc.DropArena()
		tv, err := c.eng.ComputeView(c.req, c.doc)
		if err != nil {
			return err
		}
		if arenaXML != tv.XMLIndent("  ") {
			return fmt.Errorf("%s: representations disagree on output", c.name)
		}
		nodes := c.doc.CountNodes()

		serve := func() error {
			view, err := c.eng.ComputeView(c.req, c.doc)
			if err != nil {
				return err
			}
			b := dom.GetBuffer(hint)
			err = view.WriteXML(b, dom.WriteOptions{Indent: "  "})
			dom.PutBuffer(b)
			return err
		}
		nsTree := map[string]float64{}
		for _, repr := range []string{"tree", "arena"} {
			if repr == "arena" {
				c.doc.BuildArena()
			} // tree runs first: the arena is already dropped
			view, err := c.eng.ComputeView(c.req, c.doc)
			if err != nil {
				return err
			}
			unparse := func() error {
				b := dom.GetBuffer(hint)
				err := view.WriteXML(b, dom.WriteOptions{Indent: "  "})
				dom.PutBuffer(b)
				return err
			}
			for _, st := range []struct {
				name string
				fn   func() error
				cold bool
			}{{"serve", serve, false}, {"serve-cold", serve, true}, {"unparse", unparse, false}} {
				var saved *core.AuthIndex
				if st.cold {
					saved = c.eng.AuthIndex()
					c.eng.SetAuthIndex(nil)
				}
				br := bench(st.fn)
				if st.cold {
					c.eng.SetAuthIndex(saved)
				}
				r := domBenchResult{
					Case:     c.name,
					Nodes:    nodes,
					Repr:     repr,
					Stage:    st.name,
					NsPerOp:  float64(br.NsPerOp()),
					BytesOp:  br.AllocedBytesPerOp(),
					AllocsOp: br.AllocsPerOp(),
				}
				results = append(results, r)
				suffix := ""
				if repr == "tree" {
					nsTree[st.name] = r.NsPerOp
				} else if base := nsTree[st.name]; base > 0 {
					suffix = fmt.Sprintf("  (%.2fx)", base/r.NsPerOp)
				}
				fmt.Printf("%-14s %-8d %-8s %-9s %-14.0f %-14d %-12d%s\n",
					r.Case, r.Nodes, r.Repr, r.Stage, r.NsPerOp, r.BytesOp, r.AllocsOp, suffix)
			}
		}
	}
	fmt.Println("(serve = label + mask + pooled unparse with the node-set index warm;")
	fmt.Println(" serve-cold = same cycle with the index disabled, XPath per request;")
	fmt.Println(" unparse = serialization alone; outputs verified byte-identical first)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
