package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/workload"
)

// E12 — the per-document authorization node-set index: cold labeling
// (every request evaluates every applicable path expression, the
// paper's set-at-a-time baseline) against warm labeling (cached
// node-sets, zero XPath work) on a multi-requester workload. The
// workload cycles many distinct requesters over one shared document —
// the million-user shape the ROADMAP targets — because that is exactly
// where the index pays: node-sets depend on (path, document) only, so
// every requester after the first reuses them.
//
// Cold labeling is measured twice: over the pointer tree (arena
// dropped — the pre-arena XPath cost) and over the arena (the
// arena-native evaluator collecting index-space node-sets). The
// cold-arena row's speedup against cold-tree isolates the query
// layer's arena win on the XPath-dominated fill path.

// authIndexBenchResult is one measured (case, mode) cell, and the
// record format of BENCH_authindex.json.
type authIndexBenchResult struct {
	Case       string  `json:"case"`
	Nodes      int     `json:"nodes"`
	Auths      int     `json:"auths"`
	Requesters int     `json:"requesters"`
	Mode       string  `json:"mode"` // "cold-tree", "cold-arena" or "warm"
	NsPerOp    float64 `json:"ns_op"`
	BytesOp    int64   `json:"bytes_op"`
	AllocsOp   int64   `json:"allocs_op"`
	// Speedup: cold-arena rows report cold-tree/cold-arena (the arena
	// XPath win); warm rows report cold-arena/warm (the index win).
	Speedup float64 `json:"speedup,omitempty"`
}

func expAuthIndex() error {
	type benchCase struct {
		name  string
		doc   workload.DocConfig
		auths int
	}
	cases := []benchCase{
		{"d3f4-a32", workload.DocConfig{Depth: 3, Fanout: 4, Attrs: 2, Seed: 21}, 32},
		{"d4f5-a64", workload.DocConfig{Depth: 4, Fanout: 5, Attrs: 2, Seed: 22}, 64},
	}
	if quick {
		cases = cases[:1]
	}
	const nRequesters = 16

	var results []authIndexBenchResult
	fmt.Printf("%-12s %-8s %-6s %-6s %-11s %-14s %-14s %-12s\n",
		"case", "nodes", "auths", "reqs", "mode", "ns/op", "bytes/op", "allocs/op")
	for _, c := range cases {
		cfg := workload.AuthConfig{
			N: c.auths, Doc: c.doc,
			SchemaFraction:    0.25,
			PredicateFraction: 0.4,
			Seed:              c.doc.Seed * 17,
		}.Norm()
		doc := workload.GenDocument(c.doc)
		inst, schema := workload.GenAuths(cfg)
		store := authz.NewStore()
		if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
			return err
		}
		if err := store.AddAll(authz.SchemaLevel, schema); err != nil {
			return err
		}
		dir := workload.GenDirectory(cfg.Pop)

		reqs := make([]core.Request, nRequesters)
		for i := range reqs {
			reqs[i] = core.Request{
				Requester: workload.GenRequester(cfg.Pop, c.doc.Seed*1000+int64(i)),
				URI:       cfg.URI,
				DTDURI:    cfg.DTDURI,
			}
		}

		cold := core.NewEngine(dir, store)
		cold.SetAuthIndex(nil) // the uncached oracle: XPath per request
		warm := core.NewEngine(dir, store)
		warm.WarmAuthIndex(doc, cfg.URI, cfg.DTDURI, 8)

		// Sanity: warm and cold labelings — with and without the arena —
		// must serve identical views for every requester before we time
		// anything.
		for _, req := range reqs {
			vw, err := warm.ComputeView(req, doc)
			if err != nil {
				return err
			}
			vc, err := cold.ComputeView(req, doc)
			if err != nil {
				return err
			}
			doc.DropArena()
			vt, err := cold.ComputeView(req, doc)
			doc.BuildArena()
			if err != nil {
				return err
			}
			if vw.XMLIndent("  ") != vc.XMLIndent("  ") || vc.XMLIndent("  ") != vt.XMLIndent("  ") {
				return fmt.Errorf("%s: warm/cold-arena/cold-tree views disagree for %s", c.name, req.Requester)
			}
		}

		nodes := doc.CountNodes()
		var nsColdTree, nsColdArena float64
		for _, mode := range []struct {
			name  string
			eng   *core.Engine
			arena bool
		}{{"cold-tree", cold, false}, {"cold-arena", cold, true}, {"warm", warm, true}} {
			eng := mode.eng
			// The document is shared across modes; the benchmarks run
			// sequentially, so representation flips are safe.
			if mode.arena {
				if doc.ArenaIfBuilt() == nil {
					doc.BuildArena()
				}
			} else {
				doc.DropArena()
			}
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.Label(reqs[i%len(reqs)], doc); err != nil {
						b.Fatal(err)
					}
				}
			})
			if doc.ArenaIfBuilt() == nil {
				doc.BuildArena()
			}
			r := authIndexBenchResult{
				Case:       c.name,
				Nodes:      nodes,
				Auths:      c.auths,
				Requesters: nRequesters,
				Mode:       mode.name,
				NsPerOp:    float64(br.NsPerOp()),
				BytesOp:    br.AllocedBytesPerOp(),
				AllocsOp:   br.AllocsPerOp(),
			}
			suffix := ""
			switch mode.name {
			case "cold-tree":
				nsColdTree = r.NsPerOp
			case "cold-arena":
				nsColdArena = r.NsPerOp
				if nsColdTree > 0 {
					r.Speedup = nsColdTree / r.NsPerOp
					suffix = fmt.Sprintf("  (%.2fx vs cold-tree)", r.Speedup)
				}
			case "warm":
				if nsColdArena > 0 {
					r.Speedup = nsColdArena / r.NsPerOp
					suffix = fmt.Sprintf("  (%.2fx vs cold-arena)", r.Speedup)
				}
			}
			results = append(results, r)
			fmt.Printf("%-12s %-8d %-6d %-6d %-11s %-14.0f %-14d %-12d%s\n",
				r.Case, r.Nodes, r.Auths, r.Requesters, r.Mode, r.NsPerOp, r.BytesOp, r.AllocsOp, suffix)
		}
	}
	fmt.Println("(cold = index disabled, every request evaluates every applicable path —")
	fmt.Println(" over the pointer tree (cold-tree) or the arena-native evaluator (cold-arena);")
	fmt.Println(" warm = node-set index pre-filled, steady-state labeling does zero XPath work;")
	fmt.Println(" requests cycle distinct requesters, so warm hits are cross-requester reuse)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
