package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
	"xmlsec/internal/subjects"
	"xmlsec/internal/wal"
)

// E14 — the durability tax: PUT (document update) throughput with the
// write-ahead log under each fsync policy, against the in-memory
// baseline. Every update runs the full write path — view diff, merge,
// DTD validation, WAL append, commit — so the numbers are the
// end-to-end cost a client sees, not the raw fsync latency (that is the
// xmlsec_wal_fsync_seconds histogram's job).

// updatedLab is a valid replacement for CSlab.xml (one project dropped)
// so consecutive updates alternate between two distinct states.
const updatedLab = `<?xml version="1.0"?>
<!DOCTYPE laboratory SYSTEM "laboratory.xml">
<laboratory name="CSlab">
  <project name="Access Models" type="internal">
    <manager><flname>Ada Turing</flname></manager>
    <paper category="public"><title>XML Views</title></paper>
  </project>
</laboratory>
`

// walBenchResult is one measured policy row, and the record format of
// BENCH_wal.json.
type walBenchResult struct {
	Policy     string  `json:"policy"`
	NsPerOp    float64 `json:"ns_op"`
	PutsPerSec float64 `json:"puts_per_sec"`
	Appends    uint64  `json:"appends"`
	Fsyncs     uint64  `json:"fsyncs"`
	WALBytes   uint64  `json:"wal_bytes"`
}

func expWAL() error {
	sam := subjects.Requester{User: "Sam", IP: "130.89.56.8", Host: "adminhost.lab.com"}
	mkSite := func() (*server.Site, error) {
		site, err := mkLabSite()
		if err != nil {
			return nil, err
		}
		if err := site.Auths.Add(authz.InstanceLevel,
			authz.MustParse(`<<Admin,*,*>,CSlab.xml:/laboratory,read,+,R>`)); err != nil {
			return nil, err
		}
		if err := site.GrantWrite(authz.InstanceLevel,
			`<<Admin,*,*>,CSlab.xml:/laboratory,write,+,R>`); err != nil {
			return nil, err
		}
		return site, nil
	}

	policies := []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"off", 0}, // no WAL at all: the in-memory baseline
		{wal.SyncAlways.String(), wal.SyncAlways},
		{wal.SyncInterval.String(), wal.SyncInterval},
		{wal.SyncNever.String(), wal.SyncNever},
	}

	var results []walBenchResult
	var nsOff float64
	fmt.Printf("%-10s %-14s %-14s %-10s %-10s %-12s\n",
		"fsync", "ns/op", "puts/sec", "appends", "fsyncs", "wal bytes")
	for _, p := range policies {
		site, err := mkSite()
		if err != nil {
			return err
		}
		if p.name != "off" {
			dir, err := os.MkdirTemp("", "xsbench-wal-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			// A high snapshot threshold keeps compaction out of the
			// measurement; E14 isolates the append/fsync cost.
			if err := site.EnableDurability(dir, server.DurabilityOptions{
				Sync:          p.sync,
				SnapshotBytes: 1 << 30,
			}); err != nil {
				return err
			}
		}
		sources := [2]string{updatedLab, labexample.DocSource}
		i := 0
		br := testing.Benchmark(func(b *testing.B) {
			for ; b.Loop(); i++ {
				if err := site.Update(sam, labexample.DocURI, sources[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := site.WALStats()
		if site.Durable() {
			if err := site.CloseDurability(); err != nil {
				return err
			}
		}
		r := walBenchResult{
			Policy:     p.name,
			NsPerOp:    float64(br.NsPerOp()),
			PutsPerSec: 1e9 / float64(br.NsPerOp()),
			Appends:    st.Appends,
			Fsyncs:     st.Fsyncs,
			WALBytes:   st.AppendedBytes,
		}
		results = append(results, r)
		suffix := ""
		if p.name == "off" {
			nsOff = r.NsPerOp
		} else if nsOff > 0 {
			suffix = fmt.Sprintf("  (%.2fx baseline)", r.NsPerOp/nsOff)
		}
		fmt.Printf("%-10s %-14.0f %-14.0f %-10d %-10d %-12d%s\n",
			r.Policy, r.NsPerOp, r.PutsPerSec, r.Appends, r.Fsyncs, r.WALBytes, suffix)
	}
	fmt.Println("(each op is a full document update: view diff, merge, DTD validation,")
	fmt.Println(" WAL append, commit; 'always' pays one fsync per op, 'interval' amortizes")
	fmt.Println(" them on a 50ms ticker, 'never' leaves flushing to the OS)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
