package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"xmlsec/internal/labexample"
	"xmlsec/internal/obs"
	"xmlsec/internal/server"
	"xmlsec/internal/trace"
)

// E17 — the per-request cost-accounting overhead. The cost card's
// contract: carrying it costs no allocations beyond the seed serve
// path (the card comes from a pool and rides in the same context value
// the request ID already occupied) and ≤2% added latency. Both
// scenarios that matter are measured: the fully on-line cycle (every
// stage runs, so every counter in the card is exercised) and the
// cached serve path (the microsecond-scale hot path where a fixed
// overhead would weigh the most). The baseline is what the seed
// middleware did per request — thread a request ID through the
// context — so the measured delta is exactly what this PR added.

// obsBenchResult is one measured scenario+mode, and the record format
// of BENCH_obs.json.
type obsBenchResult struct {
	Scenario    string  `json:"scenario"` // "online", "cached"
	Mode        string  `json:"mode"`     // "no-card", "card"
	NsPerOp     float64 `json:"ns_op"`
	BytesOp     int64   `json:"bytes_op"`
	AllocsOp    int64   `json:"allocs_op"`
	OverheadPct float64 `json:"overhead_pct"` // vs the scenario's no-card row
}

func expObs() error {
	type prepared struct {
		scenario string
		card     bool
		site     *server.Site
		minBatch time.Duration
	}
	mk := func(scenario string, card bool) (*prepared, error) {
		site, err := mkLabSite()
		if err != nil {
			return nil, err
		}
		switch scenario {
		case "online":
			site.ParsePerRequest = true
			site.ValidateViews = true
		case "cached":
			site.EnableViewCache(64)
		}
		return &prepared{scenario: scenario, card: card, site: site}, nil
	}
	var runs []*prepared
	for _, scenario := range []string{"online", "cached"} {
		for _, card := range []bool{false, true} {
			p, err := mk(scenario, card)
			if err != nil {
				return err
			}
			runs = append(runs, p)
		}
	}

	// request is the middleware's per-request work, minus the HTTP
	// stack: the no-card mode threads the request ID the way the seed
	// did; the card mode additionally checks a card out of the pool,
	// folds it into the same context value, and returns it — the full
	// accounting cycle a production request pays.
	request := func(p *prepared) error {
		ctx := context.Background()
		if p.card {
			c := obs.GetCostCard()
			ctx = trace.WithRequest(ctx, "bench", c)
			_, err := p.site.ProcessContext(ctx, labexample.Tom, labexample.DocURI)
			obs.PutCostCard(c)
			return err
		}
		ctx = trace.WithRequestID(ctx, "bench")
		_, err := p.site.ProcessContext(ctx, labexample.Tom, labexample.DocURI)
		return err
	}

	// As in the trace experiment: the effect is smaller than shared-host
	// load drift over a one-second run, so the modes run in tightly
	// interleaved fixed batches and the fastest batch per mode is kept.
	const batchOps = 100
	batches := 80
	if quick {
		batches = 20
	}
	for _, p := range runs { // warm caches, indexes, and the card pool
		if err := request(p); err != nil {
			return err
		}
	}
	for b := 0; b < batches; b++ {
		for _, p := range runs {
			start := time.Now()
			for i := 0; i < batchOps; i++ {
				if err := request(p); err != nil {
					return err
				}
			}
			if el := time.Since(start); p.minBatch == 0 || el < p.minBatch {
				p.minBatch = el
			}
		}
	}

	var results []obsBenchResult
	base := map[string]float64{}
	fmt.Printf("%-10s %-9s %-12s %-12s %-12s %-10s\n", "scenario", "mode", "ns/op", "bytes/op", "allocs/op", "overhead")
	for _, p := range runs {
		const allocOps = 512
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < allocOps; i++ {
			if err := request(p); err != nil {
				return err
			}
		}
		runtime.ReadMemStats(&after)

		mode := "no-card"
		if p.card {
			mode = "card"
		}
		r := obsBenchResult{
			Scenario: p.scenario,
			Mode:     mode,
			NsPerOp:  float64(p.minBatch.Nanoseconds()) / batchOps,
			BytesOp:  int64((after.TotalAlloc - before.TotalAlloc) / allocOps),
			AllocsOp: int64((after.Mallocs - before.Mallocs) / allocOps),
		}
		overhead := "-"
		if !p.card {
			base[p.scenario] = r.NsPerOp
		} else if b := base[p.scenario]; b > 0 {
			r.OverheadPct = (r.NsPerOp - b) / b * 100
			overhead = fmt.Sprintf("%+.2f%%", r.OverheadPct)
		}
		results = append(results, r)
		fmt.Printf("%-10s %-9s %-12.0f %-12d %-12d %-10s\n",
			r.Scenario, r.Mode, r.NsPerOp, r.BytesOp, r.AllocsOp, overhead)
	}
	fmt.Println("(no-card = the seed serve path, request ID threaded through the context;")
	fmt.Println(" card = pooled cost card folded into the same context value, every counter")
	fmt.Println(" live; online = fully on-line cycle, cached = class-keyed view-cache hit)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
