package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
	"xmlsec/internal/trace"
)

// E13 — the per-request tracing overhead. The recorder's contract:
// untraced requests stay allocation-free, and tracing at the default
// sampling rate (1 in trace.DefaultSampleEvery requests) adds <3% to
// the fully on-line cycle. The every-request mode is also measured —
// it is what an operator debugging with SampleEvery=1 pays, and it is
// why the default samples: a full span tree costs a few microseconds,
// which is a double-digit fraction of this processor's microsecond-
// scale cycles. The experiment emulates what the HTTP middleware does
// per request — start a trace, thread its root span through
// ProcessContext, finish — so the measured delta is exactly what a
// deployment turns on.

// traceBenchResult is one measured mode, and the record format of
// BENCH_trace.json.
type traceBenchResult struct {
	Mode        string  `json:"mode"` // "untraced", "default", "every-request"
	SampleEvery int     `json:"sample_every,omitempty"`
	NsPerOp     float64 `json:"ns_op"`
	BytesOp     int64   `json:"bytes_op"`
	AllocsOp    int64   `json:"allocs_op"`
	OverheadPct float64 `json:"overhead_pct"` // vs the untraced row
}

func expTrace() error {
	// Fully on-line mode: every cycle stage runs, so a trace carries its
	// full span tree (parse, label, prune, validate, unparse) and the
	// overhead number covers the worst per-request span count.
	mkSite := func() (*server.Site, error) {
		site, err := mkLabSite()
		if err != nil {
			return nil, err
		}
		site.ParsePerRequest = true
		site.ValidateViews = true
		return site, nil
	}

	type mode struct {
		name        string
		sampleEvery int // 0 = tracing disabled
	}
	modes := []mode{
		{"untraced", 0},
		{"default", trace.DefaultSampleEvery},
		{"every-request", 1},
	}

	type prepared struct {
		mode
		site     *server.Site
		rec      *trace.Recorder
		minBatch time.Duration
	}
	var runs []*prepared
	for _, m := range modes {
		site, err := mkSite()
		if err != nil {
			return err
		}
		p := &prepared{mode: m, site: site}
		if m.sampleEvery > 0 {
			site.EnableTracing(trace.Options{
				Capacity:      64,
				SampleEvery:   m.sampleEvery,
				SlowThreshold: -1, // isolate span cost from slow capture
			})
			p.rec = site.TraceRecorder()
		}
		runs = append(runs, p)
	}

	// request is the middleware's per-request work, minus the HTTP stack.
	request := func(p *prepared) error {
		ctx := context.Background()
		tr := p.rec.Start("GET /docs/")
		if tr != nil {
			ctx = trace.NewContext(ctx, tr.Root())
		}
		_, err := p.site.ProcessContext(ctx, labexample.Tom, labexample.DocURI)
		tr.Finish()
		return err
	}

	// The effect measured here (a few percent) is smaller than the load
	// drift of a shared host over a one-second benchmark run, so instead
	// of testing.Benchmark the modes run in tightly interleaved fixed
	// batches — every mode is sampled within milliseconds of the others —
	// and the fastest batch per mode is kept, discarding the rounds a
	// noisy neighbour disturbed.
	const batchOps = 100
	batches := 80
	if quick {
		batches = 20
	}
	for _, p := range runs { // warm caches and indexes
		if err := request(p); err != nil {
			return err
		}
	}
	for b := 0; b < batches; b++ {
		for _, p := range runs {
			start := time.Now()
			for i := 0; i < batchOps; i++ {
				if err := request(p); err != nil {
					return err
				}
			}
			if el := time.Since(start); p.minBatch == 0 || el < p.minBatch {
				p.minBatch = el
			}
		}
	}

	var results []traceBenchResult
	var nsBase float64
	fmt.Printf("%-14s %-14s %-14s %-12s %-10s\n", "mode", "ns/op", "bytes/op", "allocs/op", "overhead")
	for _, p := range runs {
		// Allocation profile, separately: allocations are deterministic
		// per mode, so a single counted loop suffices.
		const allocOps = 512
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < allocOps; i++ {
			if err := request(p); err != nil {
				return err
			}
		}
		runtime.ReadMemStats(&after)

		r := traceBenchResult{
			Mode:        p.name,
			SampleEvery: p.sampleEvery,
			NsPerOp:     float64(p.minBatch.Nanoseconds()) / batchOps,
			BytesOp:     int64((after.TotalAlloc - before.TotalAlloc) / allocOps),
			AllocsOp:    int64((after.Mallocs - before.Mallocs) / allocOps),
		}
		overhead := "-"
		if p.sampleEvery == 0 {
			nsBase = r.NsPerOp
		} else if nsBase > 0 {
			r.OverheadPct = (r.NsPerOp - nsBase) / nsBase * 100
			overhead = fmt.Sprintf("%+.2f%%", r.OverheadPct)
		}
		results = append(results, r)
		fmt.Printf("%-14s %-14.0f %-14d %-12d %-10s\n",
			r.Mode, r.NsPerOp, r.BytesOp, r.AllocsOp, overhead)
	}
	fmt.Printf("(untraced = no recorder installed; default = 1-in-%d sampling;\n", trace.DefaultSampleEvery)
	fmt.Println(" every-request = SampleEvery 1, the debugging mode; overhead is added")
	fmt.Println(" latency relative to the untraced baseline, fully on-line cycle)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
