package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"xmlsec/internal/authz"
	"xmlsec/internal/server"
	"xmlsec/internal/subjects"
	"xmlsec/internal/workload"
)

// E15 — the subject-equivalence class index: steady-state serve cost
// and cache footprint as the requester population grows from 10² to
// 10⁶ users under a FIXED policy. A view depends on a requester only
// through the set of authorizations applicable to it, so the policy
// below — 8 role groups × 3 IP subnets × 2 symbolic domains — admits
// at most 48 distinct applicability sets however many users exist.
// With the view cache keyed per class instead of per requester triple,
// both the warm-request cost and the number of cached entries should
// stay flat across four orders of magnitude of population; that
// flatness is the experiment's claim.

// classesBenchResult is one measured population row, and the record
// format of BENCH_classes.json.
type classesBenchResult struct {
	Users    int     `json:"users"`
	Sampled  int     `json:"sampled_requesters"`
	Classes  int     `json:"classes"`
	Entries  int     `json:"cache_entries"`
	HitRate  float64 `json:"hit_rate"`
	NsPerOp  float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

const classesURI = "class.xml"

// classesGroups/Subnets/Domains shape the fixed policy; the product
// bounds the class count at 48 whatever the population size.
const (
	classesGroups  = 8
	classesSubnets = 3
	classesDomains = 2
)

// classesRequester derives the i-th member of the population: its
// group, subnet, and symbolic domain are all functions of i, so
// regenerating a sample never needs the full population in memory.
func classesRequester(i int) subjects.Requester {
	return subjects.Requester{
		User: fmt.Sprintf("u%d", i),
		IP:   fmt.Sprintf("10.%d.%d.%d", (i/classesGroups)%classesSubnets, (i/256)%256, i%256),
		Host: fmt.Sprintf("h%d.dom%d.org", i, (i/24)%classesDomains),
	}
}

// classesSite assembles a site with the fixed policy over a population
// of n users: user u<i> is a member of group g<i mod 8>.
func classesSite(n int) (*server.Site, error) {
	site := server.NewSite()
	dir := subjects.NewDirectory()
	for g := 0; g < classesGroups; g++ {
		if err := dir.AddGroup(fmt.Sprintf("g%d", g)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		if err := dir.AddUser(fmt.Sprintf("u%d", i), fmt.Sprintf("g%d", i%classesGroups)); err != nil {
			return nil, err
		}
	}
	site.Directory = dir
	site.Engine.Hierarchy.Dir = dir

	doc := workload.GenDocument(workload.DocConfig{Depth: 3, Fanout: 4, Attrs: 2, Seed: 41})
	if err := site.Docs.AddDocument(classesURI, doc.String()); err != nil {
		return nil, err
	}

	// The fixed policy: one subject per group, subnet, and domain, with
	// alternating signs over distinct subtrees, plus a Public grant on
	// the root so every view is non-empty.
	tuples := []string{fmt.Sprintf(`<<Public,*,*>,%s:/root,read,+,R>`, classesURI)}
	for g := 0; g < classesGroups; g++ {
		sign := "+"
		if g%2 == 1 {
			sign = "-"
		}
		tuples = append(tuples, fmt.Sprintf(`<<g%d,*,*>,%s:/root/%s,read,%s,R>`,
			g, classesURI, workload.ElemName(1, g%3), sign))
	}
	for s := 0; s < classesSubnets; s++ {
		sign := "+"
		if s%2 == 1 {
			sign = "-"
		}
		tuples = append(tuples, fmt.Sprintf(`<<Public,10.%d.*,*>,%s://%s,read,%s,R>`,
			s, classesURI, workload.ElemName(2, s%3), sign))
	}
	for d := 0; d < classesDomains; d++ {
		sign := "-"
		if d%2 == 1 {
			sign = "+"
		}
		tuples = append(tuples, fmt.Sprintf(`<<Public,*,*.dom%d.org>,%s://%s,read,%s,L>`,
			d, classesURI, workload.ElemName(3, d%3), sign))
	}
	for _, t := range tuples {
		if err := site.Auths.Add(authz.InstanceLevel, authz.MustParse(t)); err != nil {
			return nil, err
		}
	}
	site.EnableViewCache(256)
	return site, nil
}

func expClasses() error {
	populations := []int{100, 1_000, 10_000, 100_000, 1_000_000}
	if quick {
		populations = []int{100, 1_000, 10_000}
	}
	const maxSample = 4096

	var results []classesBenchResult
	fmt.Printf("%-10s %-9s %-9s %-9s %-9s %-14s %-14s %-12s\n",
		"users", "sampled", "classes", "entries", "hit-rate", "ns/op", "bytes/op", "allocs/op")
	for _, n := range populations {
		site, err := classesSite(n)
		if err != nil {
			return err
		}
		sampled := n
		if sampled > maxSample {
			sampled = maxSample
		}
		// A prefix sample suffices: group, subnet, and domain all cycle
		// with period ≤ 48, so the first 48 requesters already realize
		// every combination (strided sampling would alias — an even
		// stride visits only even groups).
		reqs := make([]subjects.Requester, sampled)
		for i := range reqs {
			reqs[i] = classesRequester(i)
		}
		// Warm: every class computes its view once.
		for _, rq := range reqs {
			if _, err := site.Process(rq, classesURI); err != nil {
				return fmt.Errorf("population %d: warming %s: %w", n, rq, err)
			}
		}
		warmHits, warmMisses := site.CacheStats()
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := site.Process(reqs[i%len(reqs)], classesURI); err != nil {
					b.Fatal(err)
				}
			}
		})
		hits, misses := site.CacheStats()
		hitRate := 0.0
		if d := (hits - warmHits) + (misses - warmMisses); d > 0 {
			hitRate = float64(hits-warmHits) / float64(d)
		}
		r := classesBenchResult{
			Users:    n,
			Sampled:  sampled,
			Classes:  site.ClassStats().Classes,
			Entries:  site.CacheEntries(),
			HitRate:  hitRate,
			NsPerOp:  float64(br.NsPerOp()),
			BytesOp:  br.AllocedBytesPerOp(),
			AllocsOp: br.AllocsPerOp(),
		}
		results = append(results, r)
		fmt.Printf("%-10d %-9d %-9d %-9d %-9.3f %-14.0f %-14d %-12d\n",
			r.Users, r.Sampled, r.Classes, r.Entries, r.HitRate, r.NsPerOp, r.BytesOp, r.AllocsOp)
	}
	first, last := results[0], results[len(results)-1]
	fmt.Printf("\npopulation grew %dx; warm serve cost changed %.2fx; cache entries %d → %d\n",
		last.Users/first.Users, last.NsPerOp/first.NsPerOp, first.Entries, last.Entries)
	fmt.Println("(fixed policy: 8 groups × 3 subnets × 2 domains bounds the applicability")
	fmt.Println(" sets at 48; the cache holds one entry per CLASS, not per requester, so")
	fmt.Println(" cost and footprint stay flat while the population spans four decades)")

	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
