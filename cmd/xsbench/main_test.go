package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// runExp executes one experiment function with stdout captured, so the
// harness itself is covered by go test (the heavy sweeps are skipped;
// quick mode is forced).
func runExp(t *testing.T, fn func() error) string {
	t.Helper()
	quick = true
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		outCh <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

func TestExpFig1(t *testing.T) {
	out := runExp(t, expFig1)
	if !strings.Contains(out, "valid instance, 26 element+attribute nodes") {
		t.Errorf("fig1 output:\n%s", out)
	}
}

func TestExpFig3(t *testing.T) {
	out := runExp(t, expFig3)
	if !strings.Contains(out, "View of Tom@130.100.50.8(infosys.bld1.it)") {
		t.Errorf("fig3 missing Tom's view:\n%s", out)
	}
	if strings.Contains(out, "Security Markup") {
		// Sam's view legitimately contains it; Tom's must not. Check
		// ordering: the first view block is Tom's.
		tomBlock := out[:strings.Index(out, "View of Sam")]
		if strings.Contains(tomBlock, "Security Markup") {
			t.Errorf("Tom's view leaked private paper:\n%s", tomBlock)
		}
	}
}

func TestExpLoosen(t *testing.T) {
	out := runExp(t, expLoosen)
	if !strings.Contains(out, "loosening invariant held for 4/4") {
		t.Errorf("loosen output:\n%s", out)
	}
}

func TestExpConflict(t *testing.T) {
	out := runExp(t, expConflict)
	for _, rule := range []string{
		"denials-take-precedence", "permissions-take-precedence",
		"nothing-takes-precedence", "majority-takes-precedence",
	} {
		if !strings.Contains(out, rule) {
			t.Errorf("conflict output missing %s:\n%s", rule, out)
		}
	}
}

func TestExpSubjectsAndXPath(t *testing.T) {
	out := runExp(t, expSubjects)
	if !strings.Contains(out, "Leq ns/op") {
		t.Errorf("subjects output:\n%s", out)
	}
	out = runExp(t, expXPath)
	if !strings.Contains(out, "//fund/ancestor::project") {
		t.Errorf("xpath output:\n%s", out)
	}
}

func TestExpCache(t *testing.T) {
	out := runExp(t, expCache)
	if !strings.Contains(out, "view cache") {
		t.Errorf("cache output:\n%s", out)
	}
}
