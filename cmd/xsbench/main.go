// Command xsbench regenerates the experiments indexed in DESIGN.md §2.
// The paper (EDBT 2000) publishes no measured tables; its evaluation is
// the worked example of Figures 1 and 3 plus the claim that recursive
// propagation gives fast on-line view computation. xsbench reproduces
// each figure as a golden run and backs the performance claim with
// measured sweeps; EXPERIMENTS.md records the outputs.
//
// Usage:
//
//	xsbench -exp all            run everything
//	xsbench -exp fig3           one experiment: fig1 fig3 loosen online
//	                            pipeline conflict subjects xpath cache
//	                            stages view authindex
//	xsbench -exp view -json BENCH_view.json
//	                            clone vs mask serve path, JSON output
//	xsbench -exp authindex -json BENCH_authindex.json
//	                            cold vs warm node-set-index labeling
//	xsbench -exp trace -json BENCH_trace.json
//	                            traced vs untraced request latency
//	xsbench -exp wal -json BENCH_wal.json
//	                            PUT throughput under each WAL fsync policy
//	xsbench -exp classes -json BENCH_classes.json
//	                            serve cost and cache footprint vs requester
//	                            population under class-keyed caching
//	xsbench -exp obs -json BENCH_obs.json
//	                            per-request cost-accounting overhead
//	xsbench -exp updates -json BENCH_updates.json
//	                            update scripts vs whole-document PUTs at
//	                            1%/10%/50% write fractions
//	xsbench -exp online -quick  smaller sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xmlsec/internal/authz"
	"xmlsec/internal/core"
	"xmlsec/internal/dom"
	"xmlsec/internal/dtd"
	"xmlsec/internal/labexample"
	"xmlsec/internal/server"
	"xmlsec/internal/subjects"
	"xmlsec/internal/workload"
	"xmlsec/internal/xmlparse"
	"xmlsec/internal/xpath"
)

var (
	quick   bool
	jsonOut string
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1 fig3 loosen online pipeline conflict subjects xpath cache stages view authindex trace wal classes dom obs updates all")
	flag.BoolVar(&quick, "quick", false, "smaller parameter sweeps")
	flag.StringVar(&jsonOut, "json", "", "write machine-readable results of the view/authindex/trace/wal experiments to this file")
	flag.Parse()

	experiments := map[string]func() error{
		"fig1":      expFig1,
		"fig3":      expFig3,
		"loosen":    expLoosen,
		"online":    expOnline,
		"pipeline":  expPipeline,
		"conflict":  expConflict,
		"subjects":  expSubjects,
		"xpath":     expXPath,
		"cache":     expCache,
		"stages":    expStages,
		"view":      expView,
		"authindex": expAuthIndex,
		"trace":     expTrace,
		"wal":       expWAL,
		"classes":   expClasses,
		"dom":       expDom,
		"obs":       expObs,
		"updates":   expUpdates,
	}
	order := []string{"fig1", "fig3", "loosen", "conflict", "subjects", "xpath", "pipeline", "online", "cache", "stages", "view", "authindex", "trace", "wal", "classes", "dom", "obs", "updates"}

	var names []string
	if *exp == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*exp, ",") {
			if _, ok := experiments[n]; !ok {
				fmt.Fprintf(os.Stderr, "xsbench: unknown experiment %q\n", n)
				os.Exit(2)
			}
			names = append(names, n)
		}
	}
	for _, n := range names {
		fmt.Printf("=== experiment %s ===\n", n)
		if err := experiments[n](); err != nil {
			fmt.Fprintf(os.Stderr, "xsbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// measure runs fn repeatedly until it has consumed ~80ms (or 8 runs,
// whichever is later) and returns the mean duration per run.
func measure(fn func()) time.Duration {
	fn() // warm up
	var n int
	start := time.Now()
	for {
		fn()
		n++
		if el := time.Since(start); el > 80*time.Millisecond && n >= 3 {
			return el / time.Duration(n)
		}
		if n >= 10000 {
			return time.Since(start) / time.Duration(n)
		}
	}
}

// E1 — Figure 1: the laboratory DTD and its tree representation.
func expFig1() error {
	d, err := dtd.Parse(labexample.DTDSource)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1(a): laboratory DTD")
	fmt.Print(labexample.DTDSource)
	fmt.Println("\nFigure 1(b): tree representation (element -> content, attributes)")
	for _, name := range d.ElementNames() {
		e := d.Element(name)
		fmt.Printf("  %-12s %s", name, e.ContentString())
		if defs := d.Attlists[name]; len(defs) > 0 {
			var attrs []string
			for _, a := range defs {
				attrs = append(attrs, "@"+a.Name)
			}
			fmt.Printf("   [%s]", strings.Join(attrs, " "))
		}
		fmt.Println()
	}
	doc, docDTD := labexample.Parse()
	if errs := docDTD.Validate(doc, dtd.ValidateOptions{}); errs != nil {
		return fmt.Errorf("CSlab.xml should validate: %w", errs)
	}
	fmt.Printf("\nCSlab.xml: valid instance, %d element+attribute nodes\n", doc.CountNodes())
	return nil
}

// E3 — Figure 3: the views of Example 2.
func expFig3() error {
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	fmt.Println("Example 1 authorizations:")
	for i, t := range labexample.AuthTuples {
		level := "instance"
		if i == 0 {
			level = "schema  "
		}
		fmt.Printf("  [%s] %s\n", level, t)
	}
	for _, rq := range []subjects.Requester{
		labexample.Tom,
		{User: "Sam", IP: "130.89.56.8", Host: "adminhost.lab.com"},
		{User: "anonymous", IP: "200.1.2.3", Host: "outside.example.com"},
	} {
		req := core.Request{Requester: rq, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
		view, err := eng.ComputeView(req, doc)
		if err != nil {
			return err
		}
		fmt.Printf("\nView of %s (labels: %d+, %d-, %dε; kept %d/%d nodes):\n",
			rq, view.Stats.Plus, view.Stats.Minus, view.Stats.Eps, view.Stats.Kept, view.Stats.Nodes)
		fmt.Println(indentBlock(view.XMLIndent("  "), "  "))
	}
	return nil
}

// E4 — loosening: pruned views always validate against the loosened DTD.
func expLoosen() error {
	d, err := dtd.Parse(labexample.DTDSource)
	if err != nil {
		return err
	}
	loose := d.Loosen()
	fmt.Println("Loosened laboratory DTD:")
	fmt.Print(loose.String())

	// Check the invariant over every distinct single-user view.
	eng := core.NewEngine(labexample.Directory(), labexample.Store())
	doc, _ := labexample.Parse()
	checks := 0
	for _, rq := range []subjects.Requester{
		labexample.Tom,
		{User: "Sam", IP: "130.89.56.8", Host: "adminhost.lab.com"},
		{User: "anonymous", IP: "200.1.2.3", Host: "x.example.com"},
		{User: "Alice", IP: "151.100.1.1", Host: "a.dsi.it"},
	} {
		req := core.Request{Requester: rq, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
		view, err := eng.ComputeView(req, doc)
		if err != nil {
			return err
		}
		if view.Empty() {
			continue
		}
		if errs := loose.Validate(view.Materialize(), dtd.ValidateOptions{IgnoreIDs: true}); errs != nil {
			return fmt.Errorf("view of %s violates loosened DTD: %w", rq, errs)
		}
		if errs := d.Validate(view.Materialize(), dtd.ValidateOptions{IgnoreIDs: true}); errs == nil {
			fmt.Printf("  note: view of %s happens to satisfy the original DTD too\n", rq)
		}
		checks++
	}
	fmt.Printf("loosening invariant held for %d/%d non-empty views\n", checks, checks)
	return nil
}

// E5 — "fast on-line computation": propagation labeling vs the naive
// per-node baselines, sweeping document size and authorization count.
func expOnline() error {
	sizes := []workload.DocConfig{
		{Depth: 2, Fanout: 3, Attrs: 2},
		{Depth: 3, Fanout: 4, Attrs: 2},
		{Depth: 4, Fanout: 5, Attrs: 2},
		{Depth: 5, Fanout: 5, Attrs: 2},
	}
	authCounts := []int{4, 16, 64, 256}
	if quick {
		sizes = sizes[:3]
		authCounts = []int{4, 16, 64}
	}
	fmt.Printf("%-8s %-6s %-6s %-12s %-14s %-14s %-9s %-9s\n",
		"nodes", "auths", "appl", "propagation", "naive(memo)", "naive(full)", "memo/fast", "full/fast")
	for _, dc := range sizes {
		doc := workload.GenDocument(dc)
		nodes := doc.CountNodes()
		for _, na := range authCounts {
			cfg := workload.AuthConfig{
				N: na, Doc: dc, SchemaFraction: 0.25,
				PredicateFraction: 0.5, WeakFraction: 0.2, Seed: int64(na),
			}.Norm()
			inst, schema := workload.GenAuths(cfg)
			store := authz.NewStore()
			if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
				return err
			}
			if err := store.AddAll(authz.SchemaLevel, schema); err != nil {
				return err
			}
			dir := workload.GenDirectory(cfg.Pop)
			eng := core.NewEngine(dir, store)
			req := core.Request{
				Requester: workload.GenRequester(cfg.Pop, 7),
				URI:       cfg.URI, DTDURI: cfg.DTDURI,
			}
			_, stats, err := eng.Label(req, doc)
			if err != nil {
				return err
			}
			appl := stats.AuthsInstance + stats.AuthsSchema
			fast := measure(func() {
				if _, _, err := eng.Label(req, doc); err != nil {
					panic(err)
				}
			})
			memo := measure(func() {
				if _, err := eng.NaiveLabel(req, doc, true); err != nil {
					panic(err)
				}
			})
			full := time.Duration(0)
			fullStr := "-"
			if nodes*na <= 10000 { // the full strawman explodes quickly
				full = measure(func() {
					if _, err := eng.NaiveLabel(req, doc, false); err != nil {
						panic(err)
					}
				})
				fullStr = full.String()
			}
			row := fmt.Sprintf("%-8d %-6d %-6d %-12s %-14s %-14s %-9.1f",
				nodes, na, appl, fast, memo, fullStr, float64(memo)/float64(fast))
			if full > 0 {
				row += fmt.Sprintf(" %-9.1f", float64(full)/float64(fast))
			} else {
				row += " -"
			}
			fmt.Println(row)
		}
	}
	fmt.Println("(propagation = the paper's single-pass algorithm; naive(memo) = per-node")
	fmt.Println(" ancestor-chain evaluation with shared node-sets; naive(full) re-evaluates")
	fmt.Println(" every path expression per node)")
	return nil
}

// E6 — the four-step processor cycle, broken down.
func expPipeline() error {
	type workloadCase struct {
		name string
		src  string
		dtds xmlparse.MapLoader
		uri  string
	}
	cases := []workloadCase{{
		name: "CSlab",
		src:  labexample.DocSource,
		dtds: xmlparse.MapLoader{labexample.DTDURI: labexample.DTDSource},
		uri:  labexample.DocURI,
	}}
	for _, dc := range []workload.DocConfig{
		{Depth: 3, Fanout: 4, Attrs: 2},
		{Depth: 4, Fanout: 5, Attrs: 2},
	} {
		doc := workload.GenDocument(dc)
		var b strings.Builder
		if err := doc.Write(&b, dom.WriteOptions{}); err != nil {
			return err
		}
		cases = append(cases, workloadCase{
			name: fmt.Sprintf("synthetic-%dn", doc.CountNodes()),
			src:  b.String(),
			uri:  "bench.xml",
		})
	}
	fmt.Printf("%-18s %-10s %-10s %-10s %-10s %-10s\n", "document", "parse", "label", "prune", "unparse", "total")
	for _, c := range cases {
		res, err := xmlparse.Parse(c.src, xmlparse.Options{Loader: c.dtds})
		if err != nil {
			return err
		}
		var eng *core.Engine
		var req core.Request
		if c.uri == labexample.DocURI {
			eng = core.NewEngine(labexample.Directory(), labexample.Store())
			req = core.Request{Requester: labexample.Tom, URI: c.uri, DTDURI: labexample.DTDURI}
		} else {
			cfg := workload.AuthConfig{N: 16, SchemaFraction: 0, PredicateFraction: 0.5, Seed: 3}.Norm()
			inst, _ := workload.GenAuths(cfg)
			store := authz.NewStore()
			if err := store.AddAll(authz.InstanceLevel, inst); err != nil {
				return err
			}
			eng = core.NewEngine(workload.GenDirectory(cfg.Pop), store)
			req = core.Request{Requester: workload.GenRequester(cfg.Pop, 7), URI: cfg.URI}
		}
		parse := measure(func() {
			if _, err := xmlparse.Parse(c.src, xmlparse.Options{Loader: c.dtds}); err != nil {
				panic(err)
			}
		})
		label := measure(func() {
			if _, _, err := eng.Label(req, res.Doc); err != nil {
				panic(err)
			}
		})
		lb, _, err := eng.Label(req, res.Doc)
		if err != nil {
			return err
		}
		pol := eng.PolicyFor(req.URI)
		prune := measure(func() {
			work := res.Doc.Clone()
			core.PruneDoc(work, lb, pol)
		})
		view, err := eng.ComputeView(req, res.Doc)
		if err != nil {
			return err
		}
		unparse := measure(func() {
			var sb strings.Builder
			if err := view.WriteXML(&sb, dom.WriteOptions{}); err != nil {
				panic(err)
			}
		})
		total := measure(func() {
			r2, err := xmlparse.Parse(c.src, xmlparse.Options{Loader: c.dtds})
			if err != nil {
				panic(err)
			}
			v, err := eng.ComputeView(req, r2.Doc)
			if err != nil {
				panic(err)
			}
			var sb strings.Builder
			if err := v.WriteXML(&sb, dom.WriteOptions{}); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-18s %-10s %-10s %-10s %-10s %-10s\n", c.name, parse, label, prune, unparse, total)
	}
	fmt.Println("(prune includes the per-request tree clone; total = full on-line cycle)")
	return nil
}

// E7 — conflict-resolution policies on a crafted conflicting set.
func expConflict() error {
	doc, _ := labexample.Parse()
	dir := labexample.Directory()
	// Two equally specific subjects for Tom with opposite signs on the
	// same object.
	tuples := []string{
		`<<Foreign,*,*>,CSlab.xml:/laboratory/project,read,-,R>`,
		`<<Public,*,*.it>,CSlab.xml:/laboratory/project,read,+,R>`,
	}
	fmt.Println("conflicting authorizations (subjects incomparable for Tom):")
	for _, t := range tuples {
		fmt.Println("  " + t)
	}
	fmt.Printf("%-28s %-8s %-8s\n", "conflict rule", "projects", "papers")
	for _, rule := range []core.ConflictRule{
		core.DenialsTakePrecedence,
		core.PermissionsTakePrecedence,
		core.NothingTakesPrecedence,
		core.MajorityTakesPrecedence,
	} {
		store := authz.NewStore()
		for _, t := range tuples {
			if err := store.Add(authz.InstanceLevel, authz.MustParse(t)); err != nil {
				return err
			}
		}
		eng := core.NewEngine(dir, store)
		eng.Default = core.Policy{Conflict: rule}
		req := core.Request{Requester: labexample.Tom, URI: labexample.DocURI, DTDURI: labexample.DTDURI}
		view, err := eng.ComputeView(req, doc)
		if err != nil {
			return err
		}
		projects := strings.Count(view.XMLIndent(" "), "<project")
		papers := strings.Count(view.XMLIndent(" "), "<paper")
		fmt.Printf("%-28s %-8d %-8d\n", rule, projects, papers)
	}
	fmt.Println("(most-specific-subject is applied first in every case, as in the paper)")
	return nil
}

// E8 — ASH partial-order evaluation cost.
func expSubjects() error {
	fmt.Printf("%-8s %-8s %-14s %-16s\n", "users", "groups", "Leq ns/op", "MostSpecific(16)")
	for _, pc := range []workload.PopConfig{
		{Users: 50, Groups: 10},
		{Users: 500, Groups: 50},
		{Users: 5000, Groups: 200},
	} {
		dir := workload.GenDirectory(pc)
		h := subjects.Hierarchy{Dir: dir}
		a := subjects.MustNewSubject("u1", "10.1.2.3", "h1.dom1.org")
		b := subjects.MustNewSubject("g1", "10.1.*", "*.dom1.org")
		leq := measure(func() {
			for i := 0; i < 100; i++ {
				h.Leq(a, b)
			}
		}) / 100
		// Most-specific filtering over 16 generated subjects.
		cfg := workload.AuthConfig{N: 16, Pop: pc, Seed: 11}
		inst, schema := workload.GenAuths(cfg)
		all := append(inst, schema...)
		ms := measure(func() {
			subjects.MostSpecific(h, all, func(x *authz.Authorization) subjects.Subject { return x.Subject })
		})
		fmt.Printf("%-8d %-8d %-14s %-16s\n", pc.Users, pc.Groups, leq, ms)
	}
	return nil
}

// E9 — the Example 1 path expressions, compiled and evaluated.
func expXPath() error {
	doc, _ := labexample.Parse()
	exprs := []string{
		`/laboratory/project`,
		`/laboratory//paper[./@category="private"]`,
		`/laboratory//paper[./@category="public"]`,
		`//project[./@type="internal"]`,
		`//project[./@type="public"]/manager`,
		`/laboratory//flname`,
		`//fund/ancestor::project`,
		`/laboratory/project[1]`,
	}
	fmt.Printf("%-48s %-6s %-12s\n", "expression", "nodes", "eval")
	for _, e := range exprs {
		p, err := xpath.Compile(e)
		if err != nil {
			return err
		}
		nodes, err := p.SelectDoc(doc)
		if err != nil {
			return err
		}
		d := measure(func() {
			for i := 0; i < 50; i++ {
				if _, err := p.SelectDoc(doc); err != nil {
					panic(err)
				}
			}
		}) / 50
		fmt.Printf("%-48s %-6d %-12s\n", e, len(nodes), d)
	}
	return nil
}

// mkLabSite assembles the paper's example site for the server-side
// experiments (cache ablation, stage breakdown).
func mkLabSite() (*server.Site, error) {
	site := server.NewSite()
	site.Directory = labexample.Directory()
	site.Engine.Hierarchy.Dir = site.Directory
	if err := site.Docs.AddDTD(labexample.DTDURI, labexample.DTDSource); err != nil {
		return nil, err
	}
	if err := site.Docs.AddDocument(labexample.DocURI, labexample.DocSource); err != nil {
		return nil, err
	}
	for i, tuple := range labexample.AuthTuples {
		level := authz.InstanceLevel
		if i == 0 {
			level = authz.SchemaLevel
		}
		if err := site.Auths.Add(level, authz.MustParse(tuple)); err != nil {
			return nil, err
		}
	}
	return site, nil
}

// expCache — extension ablation: the server's per-requester view cache
// against recomputing every request.
func expCache() error {
	plain, err := mkLabSite()
	if err != nil {
		return err
	}
	cached, err := mkLabSite()
	if err != nil {
		return err
	}
	cached.EnableViewCache(64)
	noCache := measure(func() {
		if _, err := plain.Process(labexample.Tom, labexample.DocURI); err != nil {
			panic(err)
		}
	})
	withCache := measure(func() {
		if _, err := cached.Process(labexample.Tom, labexample.DocURI); err != nil {
			panic(err)
		}
	})
	hits, misses := cached.CacheStats()
	fmt.Printf("%-22s %-12s\n", "mode", "per request")
	fmt.Printf("%-22s %-12s\n", "recompute", noCache)
	fmt.Printf("%-22s %-12s (x%.0f; %d hits / %d misses)\n",
		"view cache", withCache, float64(noCache)/float64(withCache), hits, misses)
	fmt.Println("(cache keys: requester triple + document, invalidated by store generations)")
	return nil
}

// expStages — the observability subsystem: drive the full processor in
// fully on-line mode (parse-per-request + view validation, so every
// cycle stage runs) and print the per-stage timing breakdown from the
// site's metric registry — the same histograms GET /metrics exposes.
func expStages() error {
	site, err := mkLabSite()
	if err != nil {
		return err
	}
	site.ParsePerRequest = true
	site.ValidateViews = true
	requesters := []subjects.Requester{
		labexample.Tom,
		{User: "Sam", IP: "130.89.56.8", Host: "adminhost.lab.com"},
		{User: "anonymous", IP: "200.1.2.3", Host: "outside.example.com"},
	}
	n := 300
	if quick {
		n = 60
	}
	for i := 0; i < n; i++ {
		if _, err := site.Process(requesters[i%len(requesters)], labexample.DocURI); err != nil {
			return err
		}
	}
	snap := site.Metrics().Snapshot()
	stage := snap.Metric("xmlsec_stage_duration_seconds")
	if stage == nil {
		return fmt.Errorf("stage histograms missing from the registry")
	}
	fmt.Printf("%d fully on-line cycles over %s; per-stage latency from the metric registry:\n\n",
		n, labexample.DocURI)
	fmt.Printf("%-10s %-8s %-12s %-12s %-12s %-12s\n", "stage", "count", "total", "mean", "p50", "p95")
	var cycle time.Duration
	for _, st := range []string{"parse", "label", "prune", "validate", "unparse"} {
		s := stage.Find("stage", st)
		if s == nil || s.Histogram == nil {
			continue
		}
		h := s.Histogram
		mean := time.Duration(h.Mean() * float64(time.Second))
		cycle += mean
		fmt.Printf("%-10s %-8d %-12s %-12s %-12s %-12s\n", st, h.Count,
			time.Duration(h.Sum*float64(time.Second)).Round(time.Microsecond),
			mean.Round(time.Microsecond),
			time.Duration(h.Quantile(0.5)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)*float64(time.Second)).Round(time.Microsecond))
	}
	fmt.Printf("\nsum of stage means: %s per request (quantiles are bucket-interpolated;\n", cycle.Round(time.Microsecond))
	fmt.Println(" the same histograms back the daemon's GET /metrics and /statz endpoints)")
	return nil
}

func indentBlock(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
